//! Statistics: DRAM traffic accounting and general counters.
//!
//! The central evaluation metric of the paper is *bytes of DRAM traffic per
//! instruction*, broken down by what the bytes were moved for (Figures 5, 6
//! and 9). Every DRAM operation issued by a cache controller in this
//! workspace is therefore tagged with a [`TrafficClass`] and the DRAM it
//! targets ([`DramKind`]), and [`TrafficStats`] accumulates the per-class
//! byte counts.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Which DRAM an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DramKind {
    /// The in-package (HBM-like) DRAM used as a cache.
    InPackage,
    /// The off-package (DDR) DRAM backing store.
    OffPackage,
}

impl DramKind {
    /// All DRAM kinds, in display order.
    pub const ALL: [DramKind; 2] = [DramKind::InPackage, DramKind::OffPackage];
}

impl core::fmt::Display for DramKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DramKind::InPackage => write!(f, "in-package"),
            DramKind::OffPackage => write!(f, "off-package"),
        }
    }
}

/// Why bytes were moved. These are exactly the stacked-bar categories of the
/// paper's Figure 5 (plus `Counter`, which Figure 9 separates out, and
/// `Writeback`, which the paper folds into its off-package traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Data returned for a DRAM cache hit — the only *useful* traffic.
    HitData,
    /// Data moved on a DRAM cache miss (speculative loads, off-package demand
    /// fetches on the critical path).
    MissData,
    /// Tag reads/updates and tag probes (e.g. for LLC dirty evictions that
    /// miss in Banshee's tag buffer).
    Tag,
    /// Frequency-counter (metadata) reads and writes — Banshee only.
    Counter,
    /// Cache replacement traffic: page/line fills into the DRAM cache and
    /// dirty victim evictions out of it.
    Replacement,
    /// Writebacks of dirty LLC lines to whichever DRAM currently holds them.
    Writeback,
}

impl TrafficClass {
    /// All traffic classes, in display order (matches the paper's legend
    /// order for Figure 5 with our two extra classes appended).
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::HitData,
        TrafficClass::MissData,
        TrafficClass::Tag,
        TrafficClass::Counter,
        TrafficClass::Replacement,
        TrafficClass::Writeback,
    ];

    /// Short label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::HitData => "HitData",
            TrafficClass::MissData => "MissData",
            TrafficClass::Tag => "Tag",
            TrafficClass::Counter => "Counter",
            TrafficClass::Replacement => "Replacement",
            TrafficClass::Writeback => "Writeback",
        }
    }

    /// Index into dense per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TrafficClass::HitData => 0,
            TrafficClass::MissData => 1,
            TrafficClass::Tag => 2,
            TrafficClass::Counter => 3,
            TrafficClass::Replacement => 4,
            TrafficClass::Writeback => 5,
        }
    }
}

impl core::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Byte counts per (DRAM kind, traffic class).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    in_package: [u64; 6],
    off_package: [u64; 6],
}

impl TrafficStats {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` of traffic on `dram` attributed to `class`.
    #[inline]
    pub fn add(&mut self, dram: DramKind, class: TrafficClass, bytes: u64) {
        match dram {
            DramKind::InPackage => self.in_package[class.index()] += bytes,
            DramKind::OffPackage => self.off_package[class.index()] += bytes,
        }
    }

    /// Bytes recorded for a specific (DRAM, class) pair.
    #[inline]
    pub fn bytes(&self, dram: DramKind, class: TrafficClass) -> u64 {
        match dram {
            DramKind::InPackage => self.in_package[class.index()],
            DramKind::OffPackage => self.off_package[class.index()],
        }
    }

    /// Total bytes moved on a DRAM across all classes.
    pub fn total(&self, dram: DramKind) -> u64 {
        match dram {
            DramKind::InPackage => self.in_package.iter().sum(),
            DramKind::OffPackage => self.off_package.iter().sum(),
        }
    }

    /// Total bytes moved on both DRAMs.
    pub fn grand_total(&self) -> u64 {
        self.total(DramKind::InPackage) + self.total(DramKind::OffPackage)
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..6 {
            self.in_package[i] += other.in_package[i];
            self.off_package[i] += other.off_package[i];
        }
    }

    /// The difference `self - baseline` (saturating), used to exclude a
    /// warm-up phase from measured traffic.
    pub fn since(&self, baseline: &TrafficStats) -> TrafficStats {
        let mut out = TrafficStats::new();
        for i in 0..6 {
            out.in_package[i] = self.in_package[i].saturating_sub(baseline.in_package[i]);
            out.off_package[i] = self.off_package[i].saturating_sub(baseline.off_package[i]);
        }
        out
    }

    /// Per-class breakdown for one DRAM, as (class, bytes) pairs in display
    /// order.
    pub fn breakdown(&self, dram: DramKind) -> Vec<(TrafficClass, u64)> {
        TrafficClass::ALL
            .iter()
            .map(|&c| (c, self.bytes(dram, c)))
            .collect()
    }

    /// Bytes per instruction for one DRAM and class.
    pub fn bytes_per_instr(&self, dram: DramKind, class: TrafficClass, instrs: u64) -> f64 {
        if instrs == 0 {
            0.0
        } else {
            self.bytes(dram, class) as f64 / instrs as f64
        }
    }

    /// Total bytes per instruction for one DRAM.
    pub fn total_bytes_per_instr(&self, dram: DramKind, instrs: u64) -> f64 {
        if instrs == 0 {
            0.0
        } else {
            self.total(dram) as f64 / instrs as f64
        }
    }
}

/// A single named event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A loose bag of named counters, used for per-design bookkeeping that does
/// not warrant a dedicated struct field (e.g. "tag_buffer_flushes",
/// "tlb_shootdowns", "footprint_lines_fetched").
///
/// Counter names are `&'static str` at every recording call site (they are
/// all literals), so [`StatSet::add`] / [`StatSet::inc`] never allocate on
/// the hot path: keys are stored as `Cow::Borrowed`. Owned keys only appear
/// when a set is rebuilt from JSON (deserialization), which is off the
/// simulation path. Serialization is unchanged: a name-sorted JSON object.
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    counters: BTreeMap<Cow<'static, str>, u64>,
}

impl StatSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`, creating it if needed (allocation-free:
    /// the literal is borrowed, not copied).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(Cow::Borrowed(name)).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Value of counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterate over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Merge another set into this one (summing matching counters).
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in other.counters.iter() {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if no counters have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl crate::persist::Persist for TrafficClass {
    fn save(&self, w: &mut crate::persist::SnapshotWriter) {
        w.u8(self.index() as u8);
    }
    fn restore(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::SnapshotError> {
        let idx = r.u8()? as usize;
        TrafficClass::ALL.get(idx).copied().ok_or_else(|| {
            crate::persist::SnapshotError::Corrupt(format!(
                "traffic class index {idx} out of range"
            ))
        })
    }
}

impl crate::persist::Persist for TrafficStats {
    fn save(&self, w: &mut crate::persist::SnapshotWriter) {
        for v in self.in_package.iter().chain(self.off_package.iter()) {
            w.u64(*v);
        }
    }
    fn restore(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::SnapshotError> {
        let mut out = TrafficStats::new();
        for i in 0..6 {
            out.in_package[i] = r.u64()?;
        }
        for i in 0..6 {
            out.off_package[i] = r.u64()?;
        }
        Ok(out)
    }
}

impl crate::persist::Persist for Counter {
    fn save(&self, w: &mut crate::persist::SnapshotWriter) {
        w.u64(self.0);
    }
    fn restore(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::SnapshotError> {
        Ok(Counter(r.u64()?))
    }
}

// Counter names are `&'static str` literals on the hot path, but a set
// rebuilt from a snapshot has no literals to borrow — restored keys are
// owned, exactly like the serde deserialization path. The BTreeMap already
// iterates in sorted key order, so `save → restore → save` is
// byte-identical.
impl crate::persist::Persist for StatSet {
    fn save(&self, w: &mut crate::persist::SnapshotWriter) {
        w.usize(self.counters.len());
        for (k, v) in self.counters.iter() {
            w.str(k);
            w.u64(*v);
        }
    }
    fn restore(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::SnapshotError> {
        let len = r.seq_len(9)?;
        let mut counters = BTreeMap::new();
        for _ in 0..len {
            let key = r.string()?;
            let value = r.u64()?;
            counters.insert(Cow::Owned(key), value);
        }
        Ok(StatSet { counters })
    }
}

// Manual serde impls (the derive would need map impls for `Cow` keys). The
// JSON shape matches what the former derived impl produced for a
// `BTreeMap<String, u64>` field, so persisted results remain readable and
// re-serialization stays byte-identical.
impl Serialize for StatSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "counters".to_string(),
            serde::Value::Object(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_value()))
                    .collect(),
            ),
        )])
    }
}

impl<'de> Deserialize<'de> for StatSet {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::DecodeError> {
        match value.field("counters")? {
            serde::Value::Object(entries) => Ok(StatSet {
                counters: entries
                    .iter()
                    .map(|(k, v)| Ok((Cow::Owned(k.clone()), u64::deserialize_value(v)?)))
                    .collect::<Result<_, serde::DecodeError>>()?,
            }),
            other => Err(serde::DecodeError::new(format!(
                "expected counters object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates_per_class_and_dram() {
        let mut t = TrafficStats::new();
        t.add(DramKind::InPackage, TrafficClass::HitData, 64);
        t.add(DramKind::InPackage, TrafficClass::HitData, 64);
        t.add(DramKind::InPackage, TrafficClass::Tag, 32);
        t.add(DramKind::OffPackage, TrafficClass::MissData, 64);
        assert_eq!(t.bytes(DramKind::InPackage, TrafficClass::HitData), 128);
        assert_eq!(t.bytes(DramKind::InPackage, TrafficClass::Tag), 32);
        assert_eq!(t.bytes(DramKind::OffPackage, TrafficClass::MissData), 64);
        assert_eq!(t.bytes(DramKind::OffPackage, TrafficClass::HitData), 0);
        assert_eq!(t.total(DramKind::InPackage), 160);
        assert_eq!(t.total(DramKind::OffPackage), 64);
        assert_eq!(t.grand_total(), 224);
    }

    #[test]
    fn traffic_since_subtracts_a_baseline() {
        let mut a = TrafficStats::new();
        a.add(DramKind::InPackage, TrafficClass::HitData, 100);
        let baseline = a.clone();
        a.add(DramKind::InPackage, TrafficClass::HitData, 50);
        a.add(DramKind::OffPackage, TrafficClass::MissData, 64);
        let d = a.since(&baseline);
        assert_eq!(d.bytes(DramKind::InPackage, TrafficClass::HitData), 50);
        assert_eq!(d.bytes(DramKind::OffPackage, TrafficClass::MissData), 64);
        // Subtraction never underflows.
        let zero = baseline.since(&a);
        assert_eq!(zero.grand_total(), 0);
    }

    #[test]
    fn traffic_merge_sums() {
        let mut a = TrafficStats::new();
        let mut b = TrafficStats::new();
        a.add(DramKind::InPackage, TrafficClass::Replacement, 4096);
        b.add(DramKind::InPackage, TrafficClass::Replacement, 4096);
        b.add(DramKind::OffPackage, TrafficClass::Writeback, 64);
        a.merge(&b);
        assert_eq!(
            a.bytes(DramKind::InPackage, TrafficClass::Replacement),
            8192
        );
        assert_eq!(a.bytes(DramKind::OffPackage, TrafficClass::Writeback), 64);
    }

    #[test]
    fn bytes_per_instruction() {
        let mut t = TrafficStats::new();
        t.add(DramKind::InPackage, TrafficClass::HitData, 1000);
        assert!(
            (t.bytes_per_instr(DramKind::InPackage, TrafficClass::HitData, 500) - 2.0).abs()
                < 1e-12
        );
        assert_eq!(
            t.bytes_per_instr(DramKind::InPackage, TrafficClass::HitData, 0),
            0.0
        );
        assert!((t.total_bytes_per_instr(DramKind::InPackage, 250) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_covers_all_classes() {
        let t = TrafficStats::new();
        let b = t.breakdown(DramKind::InPackage);
        assert_eq!(b.len(), TrafficClass::ALL.len());
        assert!(b.iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn statset_basics() {
        let mut s = StatSet::new();
        assert!(s.is_empty());
        s.inc("tag_buffer_flushes");
        s.add("tag_buffer_flushes", 2);
        s.add("tlb_shootdowns", 5);
        assert_eq!(s.get("tag_buffer_flushes"), 3);
        assert_eq!(s.get("tlb_shootdowns"), 5);
        assert_eq!(s.get("missing"), 0);
        assert_eq!(s.len(), 2);

        let mut other = StatSet::new();
        other.add("tlb_shootdowns", 1);
        other.add("new_counter", 7);
        s.merge(&other);
        assert_eq!(s.get("tlb_shootdowns"), 6);
        assert_eq!(s.get("new_counter"), 7);
    }

    #[test]
    fn statset_serde_shape_is_stable() {
        use serde::{Deserialize, Serialize, Value};
        let mut s = StatSet::new();
        s.add("tlb_shootdowns", 2);
        s.add("banshee_replacements", 7);
        // Shape: {"counters": {...}} with name-sorted keys, exactly what the
        // former derived impl over BTreeMap<String, u64> emitted.
        let v = s.to_value();
        let expected = Value::Object(vec![(
            "counters".to_string(),
            Value::Object(vec![
                ("banshee_replacements".to_string(), Value::UInt(7)),
                ("tlb_shootdowns".to_string(), Value::UInt(2)),
            ]),
        )]);
        assert_eq!(v, expected);
        // Round trip preserves values and re-serializes identically.
        let back = StatSet::deserialize_value(&v).unwrap();
        assert_eq!(back.get("tlb_shootdowns"), 2);
        assert_eq!(back.get("banshee_replacements"), 7);
        assert_eq!(back.to_value(), v);
        // A deserialized (owned-key) set merges back into a borrowed-key set.
        let mut merged = StatSet::new();
        merged.add("tlb_shootdowns", 1);
        merged.merge(&back);
        assert_eq!(merged.get("tlb_shootdowns"), 3);
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn class_labels_unique() {
        let labels: std::collections::HashSet<_> =
            TrafficClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), TrafficClass::ALL.len());
    }

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for c in TrafficClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
