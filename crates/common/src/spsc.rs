//! A bounded single-producer/single-consumer ring for `Copy` payloads.
//!
//! This is the data plane of the sharded simulation loop: the coordinator
//! streams DRAM commands to timing-domain workers, and workers stream
//! pre-generated trace accesses back, all through fixed-capacity rings so
//! steady-state execution performs no allocation. The ring is deliberately
//! minimal:
//!
//! * exactly one producer and one consumer (enforced by ownership — the
//!   two endpoint handles are `Send` but not `Clone`),
//! * capacity fixed at construction and rounded up to a power of two,
//! * **backpressure, never loss**: [`Producer::try_push`] refuses when the
//!   ring is full and hands the value back; the caller decides how to wait.
//!   [`Producer::push`] is the built-in stall loop (spin, then yield), with
//!   an abort predicate so a coordinator never spins on a dead worker.
//!
//! Memory ordering is the classic Lamport queue protocol: the producer
//! publishes the slot write with a `Release` store of `tail`, the consumer
//! acquires it by reading `tail` with `Acquire` (and vice versa for `head`
//! when the producer checks for space).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pad-and-align a hot atomic to its own cache line so the producer's and
/// consumer's counters never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: `Inner` is only not auto-`Send` because of the `UnsafeCell` slots;
// moving the whole ring to another thread is fine — the Lamport protocol
// (below) still serialises all slot access, and `T: Copy` means no slot
// ever needs dropping on a particular thread.
unsafe impl<T: Copy + Send> Send for Inner<T> {}
// SAFETY: shared `&Inner` is used by exactly two threads — one producer, one
// consumer. A slot is touched by at most one side at a time: the producer
// writes `buf[tail]` only while `tail - head <= mask` and before its
// `tail.store(Release)`; the consumer reads `buf[head]` only after its
// `tail.load(Acquire)` observed that store. The Acquire/Release pair on
// `tail` (and symmetrically on `head` for slot reuse) makes the write
// happen-before the read, so no slot is ever aliased mutably.
unsafe impl<T: Copy + Send> Sync for Inner<T> {}

/// Producing endpoint of a [`ring`].
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// Consuming endpoint of a [`ring`].
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Build a bounded SPSC ring holding at least `capacity` elements
/// (rounded up to a power of two, minimum 2).
pub fn ring<T: Copy + Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

/// Spins briefly, then yields to the scheduler. Shared by every stall loop
/// in the sharded simulator so single-CPU hosts (CI runners included) make
/// progress instead of burning a quantum.
#[inline]
pub fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl<T: Copy + Send> Producer<T> {
    /// Push `value`, or hand it back if the ring is currently full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let head = inner.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(value);
        }
        // SAFETY: `tail - head <= mask` (checked above with `head` loaded
        // Acquire), so this slot is free: the consumer's `head` release for
        // its previous lap happened-before our load, and the consumer never
        // touches a slot at or past the published `tail`. We are the only
        // producer (SPSC, `&mut self`), so nobody else writes it either.
        unsafe {
            (*inner.buf[tail & inner.mask].get()).write(value);
        }
        inner.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Push `value`, stalling (spin then yield) while the ring is full.
    /// Returns `false` without pushing if `abort` turns true first — the
    /// value is dropped, which is fine for `Copy` payloads.
    pub fn push(&mut self, value: T, abort: impl Fn() -> bool) -> bool {
        let mut v = value;
        let mut spins = 0u32;
        loop {
            match self.try_push(v) {
                Ok(()) => return true,
                Err(back) => {
                    if abort() {
                        return false;
                    }
                    v = back;
                    backoff(&mut spins);
                }
            }
        }
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        let head = self.inner.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usable capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T: Copy + Send> Consumer<T> {
    /// Pop the oldest element, or `None` if the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        let tail = inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head != tail` with `tail` loaded Acquire, so the
        // producer's Release store publishing this slot happened-before the
        // load: the slot is initialised, and the producer will not rewrite
        // it until we release `head` past it. `assume_init_read` duplicates
        // the value, which is sound because `T: Copy`.
        let value = unsafe { (*inner.buf[head & inner.mask].get()).assume_init_read() };
        inner.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usable capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Producer").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Consumer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = ring::<u64>(8);
        assert_eq!(tx.capacity(), 8);
        for i in 0..8 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.len(), 8);
        for i in 0..8 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(rx.try_pop().is_none());
        assert!(rx.is_empty());
    }

    /// The backpressure contract: a full ring refuses the push and returns
    /// the value intact — nothing is dropped or overwritten.
    #[test]
    fn full_ring_stalls_instead_of_dropping() {
        let (mut tx, mut rx) = ring::<u64>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99));
        assert_eq!(tx.try_push(99), Err(99), "repeated refusal, no overwrite");
        // Draining one slot admits exactly one more.
        assert_eq!(rx.try_pop(), Some(0));
        tx.try_push(4).unwrap();
        assert_eq!(tx.try_push(5), Err(5));
        for want in 1..=4 {
            assert_eq!(rx.try_pop(), Some(want));
        }
    }

    /// Blocking push on a full ring aborts (without delivering) when the
    /// abort predicate fires — the coordinator's dead-worker escape hatch.
    #[test]
    fn blocking_push_honors_abort() {
        let (mut tx, _rx) = ring::<u64>(2);
        tx.try_push(0).unwrap();
        tx.try_push(1).unwrap();
        let poisoned = AtomicBool::new(true);
        assert!(!tx.push(2, || poisoned.load(Ordering::Relaxed)));
        assert_eq!(tx.len(), 2);
    }

    /// A slow consumer never loses items: every value pushed through a tiny
    /// ring arrives, in order, under real cross-thread contention.
    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 50_000;
        let (mut tx, mut rx) = ring::<u64>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                assert!(tx.push(i, || false));
            }
        });
        let mut seen = 0u64;
        let mut spins = 0u32;
        while seen < N {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, seen, "out-of-order delivery");
                    seen += 1;
                    spins = 0;
                }
                None => backoff(&mut spins),
            }
        }
        producer.join().unwrap();
        assert!(rx.try_pop().is_none());
    }
}
