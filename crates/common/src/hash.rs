//! Fast, deterministic hashing for simulator-internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash with per-process random keys)
//! is designed to resist hash-flooding from untrusted input. Simulator state
//! is trusted, its keys are small (page numbers, cache units, `(set, way)`
//! pairs), and the maps sit on the per-access hot path — so every crate in
//! the workspace uses this FNV-1a hasher instead: it is several times faster
//! on small keys and, unlike the randomly seeded default, makes iteration
//! order a deterministic function of the inserted keys (runs are perfectly
//! reproducible across processes).
//!
//! The same 64-bit FNV-1a is used by `banshee_exec`'s result store to derive
//! entry file names from key material ([`fnv1a64`]).

// tidy: allow(std-hash): definition site — these are re-exported below with the deterministic FNV hasher plugged in
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A [`Hasher`] implementing 64-bit FNV-1a.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        self.0 = hash;
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // The dominant key shape (addresses, page numbers); hashing the
        // eight bytes in one go keeps the loop unrolled.
        self.write(&n.to_le_bytes());
    }
}

/// A `HashMap` keyed by the deterministic FNV-1a hasher.
pub type FnvHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A `HashSet` keyed by the deterministic FNV-1a hasher.
pub type FnvHashSet<T> = HashSet<T, BuildHasherDefault<FnvHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hasher_agrees_with_free_function() {
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn map_and_set_are_usable_and_deterministic() {
        let mut a = FnvHashMap::default();
        let mut b = FnvHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i * 2);
            b.insert(i, i * 2);
        }
        assert_eq!(a.get(&500), Some(&1000));
        // Identical insertion sequences iterate identically (the property
        // std's randomly seeded maps do not have).
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));

        let mut s = FnvHashSet::default();
        s.insert(42u64);
        assert!(s.contains(&42));
    }
}
