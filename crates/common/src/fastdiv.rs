//! Exact fast division/remainder by a runtime-fixed divisor.
//!
//! Cache-geometry math (`line % num_sets`, `line / num_sets`,
//! `addr / page_bytes`) runs several times per simulated access, and the
//! divisors are fixed at construction time — almost always powers of two.
//! A hardware 64-bit divide costs tens of cycles; [`FastDivMod`] replaces it
//! with a mask/shift when the divisor is a power of two and falls back to
//! the real `%`/`/` otherwise, so results are **bit-identical** for every
//! divisor.

/// Divide/remainder by a fixed divisor, specialized at construction.
#[derive(Debug, Clone, Copy)]
pub struct FastDivMod {
    n: u64,
    /// `log2(n)` when `n` is a power of two, `u32::MAX` otherwise.
    shift: u32,
}

impl FastDivMod {
    /// Prepare division by `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "divisor must be non-zero");
        FastDivMod {
            n,
            shift: if n.is_power_of_two() {
                n.trailing_zeros()
            } else {
                u32::MAX
            },
        }
    }

    /// The divisor.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// `x % n`.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        if self.shift != u32::MAX {
            x & (self.n - 1)
        } else {
            x % self.n
        }
    }

    /// `x / n`.
    #[inline]
    pub fn div(&self, x: u64) -> u64 {
        if self.shift != u32::MAX {
            x >> self.shift
        } else {
            x / self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hardware_div_for_pow2_and_not() {
        for n in [1u64, 2, 3, 4, 7, 64, 100, 512, 65_536, 1 << 40] {
            let f = FastDivMod::new(n);
            assert_eq!(f.n(), n);
            for x in [0u64, 1, n - 1, n, n + 1, 12_345_678_901, u64::MAX] {
                assert_eq!(f.rem(x), x % n, "rem mismatch for x={x} n={n}");
                assert_eq!(f.div(x), x / n, "div mismatch for x={x} n={n}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_divisor_rejected() {
        let _ = FastDivMod::new(0);
    }
}
