//! Shared configuration helpers.
//!
//! The simulator works in **CPU cycles** at a configurable core frequency
//! (2.7 GHz in the paper's Table 2). DRAM timing parameters are specified in
//! DRAM bus cycles and converted; OS costs (interrupt handlers, TLB
//! shootdowns) are specified in microseconds and converted. The helpers here
//! keep those conversions in one place.

use serde::{Deserialize, Serialize};

/// A memory capacity in bytes with convenient constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemSize(pub u64);

impl MemSize {
    /// `n` bytes.
    pub const fn bytes(n: u64) -> Self {
        MemSize(n)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        MemSize(n * 1024)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        MemSize(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        MemSize(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Number of 64-byte cache lines this capacity holds.
    pub const fn lines(self) -> u64 {
        self.0 / crate::addr::CACHE_LINE_SIZE
    }

    /// Number of 4 KiB pages this capacity holds.
    pub const fn pages(self) -> u64 {
        self.0 / crate::addr::PAGE_SIZE
    }
}

impl core::fmt::Display for MemSize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        if b >= 1 << 30 && b.is_multiple_of(1 << 30) {
            write!(f, "{} GiB", b >> 30)
        } else if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
            write!(f, "{} MiB", b >> 20)
        } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
            write!(f, "{} KiB", b >> 10)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A clock frequency expressed in cycles per second, with time→cycle helpers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CyclesPerSec(pub f64);

impl CyclesPerSec {
    /// `n` gigahertz.
    pub fn ghz(n: f64) -> Self {
        CyclesPerSec(n * 1e9)
    }

    /// `n` megahertz.
    pub fn mhz(n: f64) -> Self {
        CyclesPerSec(n * 1e6)
    }

    /// Raw frequency in Hz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Number of cycles (rounded) in `us` microseconds at this frequency.
    pub fn cycles_in_us(self, us: f64) -> u64 {
        (self.0 * us / 1e6).round() as u64
    }

    /// Number of cycles (rounded) in `ns` nanoseconds at this frequency.
    pub fn cycles_in_ns(self, ns: f64) -> u64 {
        (self.0 * ns / 1e9).round() as u64
    }

    /// Convert a cycle count at frequency `other` into a cycle count at this
    /// frequency (e.g. DRAM bus cycles → CPU cycles).
    pub fn convert_cycles_from(self, cycles: u64, other: CyclesPerSec) -> u64 {
        ((cycles as f64) * self.0 / other.0).round() as u64
    }

    /// Seconds represented by `cycles` at this frequency.
    pub fn cycles_to_secs(self, cycles: u64) -> f64 {
        cycles as f64 / self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memsize_constructors() {
        assert_eq!(MemSize::kib(4).as_bytes(), 4096);
        assert_eq!(MemSize::mib(8).as_bytes(), 8 * 1024 * 1024);
        assert_eq!(MemSize::gib(1).as_bytes(), 1 << 30);
        assert_eq!(MemSize::gib(1).pages(), 262_144);
        assert_eq!(MemSize::kib(4).lines(), 64);
    }

    #[test]
    fn memsize_display() {
        assert_eq!(MemSize::gib(16).to_string(), "16 GiB");
        assert_eq!(MemSize::mib(8).to_string(), "8 MiB");
        assert_eq!(MemSize::kib(32).to_string(), "32 KiB");
        assert_eq!(MemSize::bytes(100).to_string(), "100 B");
    }

    #[test]
    fn frequency_conversions() {
        let cpu = CyclesPerSec::ghz(2.7);
        // 20 microseconds at 2.7 GHz is 54,000 cycles (Table 3 tag buffer
        // flush overhead).
        assert_eq!(cpu.cycles_in_us(20.0), 54_000);
        assert_eq!(cpu.cycles_in_us(4.0), 10_800);
        assert_eq!(cpu.cycles_in_us(1.0), 2_700);
        assert_eq!(cpu.cycles_in_ns(100.0), 270);
    }

    #[test]
    fn cross_clock_conversion() {
        let cpu = CyclesPerSec::ghz(2.7);
        let dram_bus = CyclesPerSec::mhz(667.0);
        // 10 DRAM bus cycles (tCAS) ≈ 40.5 CPU cycles.
        let cpu_cycles = cpu.convert_cycles_from(10, dram_bus);
        assert!((39..=42).contains(&cpu_cycles), "got {cpu_cycles}");
    }

    #[test]
    fn cycles_to_secs_round_trip() {
        let cpu = CyclesPerSec::ghz(2.7);
        let s = cpu.cycles_to_secs(2_700_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
