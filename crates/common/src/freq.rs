//! Unified frequency tracking: one API over exact per-key counters and a
//! bounded-memory CountMinSketch.
//!
//! Three components keep "how often was this page touched" state: HMA's
//! per-epoch access counts, the footprint predictor's touched-line bitmaps,
//! and Banshee's sampled admission feed. Historically each held its own
//! `FnvHashMap`, whose memory grows with the footprint — a dead end for the
//! billion-page scenarios the roadmap targets. [`FrequencyTracker`] is the
//! common contract; [`FrequencyBackendKind`] selects between:
//!
//! * [`ExactTracker`] — per-key hash maps, bit-for-bit the historical
//!   behaviour. The default: every tracked figure stays byte-identical.
//! * [`CountMinSketch`] — 4-bit counters packed into 64-byte cache-line
//!   blocks (TinyLFU-style, after the Caffeine `FrequencySketch`), width and
//!   depth configurable, periodic halving for aging. Heap usage is fixed at
//!   construction; estimates may overcount (never undercount between
//!   agings), which is the fidelity trade the sketch-vs-exact experiment
//!   quantifies.
//!
//! The trait carries two operation families:
//!
//! * **counters** (`record`/`estimate`/`forget`/`halve_all`/`reset` +
//!   `enumerate_sorted` for backends that can) — the HMA and FBR feeds;
//! * **lanes** (`lane_touch`/`lane_count`/`lane_clear`) — the footprint
//!   predictor's per-page touched-line sets. The exact backend stores one
//!   64-bit mask per key; the sketch maps lane `l` of key `k` onto the
//!   sub-key `k·64 + l` and counts lanes with a non-zero estimate.
//!
//! Snapshots: [`save_tracker`] writes a self-describing image (backend tag,
//! then backend state); [`restore_tracker`] rebuilds the right backend from
//! it. `save → restore → save` is byte-identical for both backends.

use crate::hash::FnvHashMap;
use crate::persist::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::fmt;

/// Lanes per key (the footprint predictor tracks one lane per cache line in
/// a page).
pub const LANES_PER_KEY: u64 = 64;

/// A 4-bit counter saturates here; estimates are capped accordingly.
pub const CMS_COUNTER_MAX: u64 = 15;

/// Which frequency-tracking backend a simulation uses. This is
/// configuration key material: its derived `Debug` form is embedded in
/// `SimConfig::cache_key_material` whenever it is not the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyBackendKind {
    /// Exact per-key counters and lane masks (hash maps). The default.
    Exact,
    /// 4-bit CountMinSketch in 64-byte blocks.
    Cms {
        /// Counters per hash row. Rounded up so each row fills whole
        /// 32-counter block segments (power-of-two block count).
        width: u32,
        /// Independent hash rows (1..=4); the estimate is their minimum.
        depth: u32,
    },
}

impl Default for FrequencyBackendKind {
    fn default() -> Self {
        FrequencyBackendKind::Exact
    }
}

/// Smallest accepted sketch width (one block segment per row).
pub const CMS_MIN_WIDTH: u32 = 32;
/// Largest accepted sketch width (64 Mi counters per row ≈ 32 MiB at
/// depth 1 — far beyond any useful fidelity sweep).
pub const CMS_MAX_WIDTH: u32 = 1 << 26;
/// Largest accepted sketch depth (one counter per block segment).
pub const CMS_MAX_DEPTH: u32 = 4;

impl FrequencyBackendKind {
    /// Parse a backend label: `exact` or `cms:<width>x<depth>` (for example
    /// `cms:4096x4`). Errors name the valid forms and bounds.
    pub fn parse(label: &str) -> Result<Self, String> {
        if label == "exact" {
            return Ok(FrequencyBackendKind::Exact);
        }
        let Some(spec) = label.strip_prefix("cms:") else {
            return Err(format!(
                "unknown frequency backend `{label}`; valid values: `exact`, `cms:<width>x<depth>` \
                 (width {CMS_MIN_WIDTH}..={CMS_MAX_WIDTH}, depth 1..={CMS_MAX_DEPTH})"
            ));
        };
        let Some((w, d)) = spec.split_once('x') else {
            return Err(format!(
                "malformed sketch spec `{label}`; expected `cms:<width>x<depth>`, e.g. `cms:4096x4`"
            ));
        };
        let width: u32 = w
            .parse()
            .map_err(|_| format!("invalid sketch width `{w}` in `{label}`; expected an integer"))?;
        let depth: u32 = d
            .parse()
            .map_err(|_| format!("invalid sketch depth `{d}` in `{label}`; expected an integer"))?;
        if !(CMS_MIN_WIDTH..=CMS_MAX_WIDTH).contains(&width) {
            return Err(format!(
                "sketch width {width} out of range {CMS_MIN_WIDTH}..={CMS_MAX_WIDTH} in `{label}`"
            ));
        }
        if !(1..=CMS_MAX_DEPTH).contains(&depth) {
            return Err(format!(
                "sketch depth {depth} out of range 1..={CMS_MAX_DEPTH} in `{label}`"
            ));
        }
        Ok(FrequencyBackendKind::Cms { width, depth })
    }

    /// The canonical label [`FrequencyBackendKind::parse`] accepts.
    pub fn label(&self) -> String {
        match self {
            FrequencyBackendKind::Exact => "exact".to_string(),
            FrequencyBackendKind::Cms { width, depth } => format!("cms:{width}x{depth}"),
        }
    }

    /// Construct an empty tracker of this kind.
    pub fn build(&self) -> Box<dyn FrequencyTracker> {
        match *self {
            FrequencyBackendKind::Exact => Box::new(ExactTracker::new()),
            FrequencyBackendKind::Cms { width, depth } => {
                Box::new(CountMinSketch::new(width, depth))
            }
        }
    }
}

/// The unified frequency-tracking contract (object-safe; see the module
/// docs for the two operation families).
pub trait FrequencyTracker: fmt::Debug + Send {
    /// The backend this tracker was built as.
    fn kind(&self) -> FrequencyBackendKind;

    /// Count one occurrence of `key`.
    fn record(&mut self, key: u64);

    /// Estimated occurrence count of `key`. Exact backends return the true
    /// count; the sketch never undercounts (up to counter saturation at
    /// [`CMS_COUNTER_MAX`]) but may overcount on hash collisions.
    fn estimate(&self, key: u64) -> u64;

    /// Drop `key`'s count. Exact backends remove the entry; the sketch
    /// cannot forget a single key and treats this as a no-op (aging decays
    /// stale keys instead).
    fn forget(&mut self, key: u64);

    /// Halve every counter (TinyLFU-style aging).
    fn halve_all(&mut self);

    /// Clear all counter state (an epoch boundary). Lane state is cleared
    /// too on backends where the two families share storage.
    fn reset(&mut self);

    /// All `(key, count)` pairs sorted by key ascending, if this backend
    /// can enumerate them. The sketch cannot (`None`): callers that rank
    /// keys must keep their own bounded candidate set.
    fn enumerate_sorted(&self) -> Option<Vec<(u64, u64)>>;

    /// Mark lane `lane` (`0..LANES_PER_KEY`) of `key` as touched. With
    /// `require_tracked`, exact backends only update keys that already have
    /// lane state (an access to an untracked page is ignored); the sketch
    /// cannot test membership and records unconditionally.
    fn lane_touch(&mut self, key: u64, lane: u64, require_tracked: bool);

    /// Number of distinct touched lanes of `key` (0..=[`LANES_PER_KEY`]).
    fn lane_count(&self, key: u64) -> u64;

    /// Stop tracking `key`'s lanes. Exact backends remove the mask; the
    /// sketch leaves its counters to decay by aging.
    fn lane_clear(&mut self, key: u64);

    /// Bytes of heap this tracker holds. Exact backends grow with the
    /// tracked set; the sketch is fixed at construction.
    fn memory_bytes(&self) -> u64;

    /// Append this tracker's telemetry gauges (prefixed `freq_`) to `out`.
    fn gauges(&self, out: &mut Vec<(&'static str, f64)>);

    /// Append backend-specific state (no backend tag — that is
    /// [`save_tracker`]'s job).
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restore backend-specific state written by `save_state` into this
    /// (freshly built, same-kind) tracker.
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;

    /// Clone behind the object.
    fn boxed_clone(&self) -> Box<dyn FrequencyTracker>;
}

impl Clone for Box<dyn FrequencyTracker> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Write a self-describing tracker image: backend tag, then state.
pub fn save_tracker(tracker: &dyn FrequencyTracker, w: &mut SnapshotWriter) {
    match tracker.kind() {
        FrequencyBackendKind::Exact => w.u8(0),
        FrequencyBackendKind::Cms { width, depth } => {
            w.u8(1);
            w.u32(width);
            w.u32(depth);
        }
    }
    tracker.save_state(w);
}

/// Rebuild a tracker from an image written by [`save_tracker`].
pub fn restore_tracker(
    r: &mut SnapshotReader<'_>,
) -> Result<Box<dyn FrequencyTracker>, SnapshotError> {
    let kind = match r.u8()? {
        0 => FrequencyBackendKind::Exact,
        1 => {
            let width = r.u32()?;
            let depth = r.u32()?;
            if !(CMS_MIN_WIDTH..=CMS_MAX_WIDTH).contains(&width) {
                return Err(SnapshotError::Corrupt(format!(
                    "sketch width {width} out of range {CMS_MIN_WIDTH}..={CMS_MAX_WIDTH}"
                )));
            }
            if !(1..=CMS_MAX_DEPTH).contains(&depth) {
                return Err(SnapshotError::Corrupt(format!(
                    "sketch depth {depth} out of range 1..={CMS_MAX_DEPTH}"
                )));
            }
            FrequencyBackendKind::Cms { width, depth }
        }
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown frequency-tracker tag {other:#04x}"
            )))
        }
    };
    let mut tracker = kind.build();
    tracker.load_state(r)?;
    Ok(tracker)
}

/// Exact per-key counters and lane masks — the historical hash-map
/// behaviour behind the unified API.
#[derive(Debug, Clone, Default)]
pub struct ExactTracker {
    counts: FnvHashMap<u64, u64>,
    lanes: FnvHashMap<u64, u64>,
}

impl ExactTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FrequencyTracker for ExactTracker {
    fn kind(&self) -> FrequencyBackendKind {
        FrequencyBackendKind::Exact
    }

    fn record(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    fn estimate(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    fn forget(&mut self, key: u64) {
        self.counts.remove(&key);
    }

    fn halve_all(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    fn reset(&mut self) {
        self.counts.clear();
    }

    fn enumerate_sorted(&self) -> Option<Vec<(u64, u64)>> {
        let mut entries: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        Some(entries)
    }

    fn lane_touch(&mut self, key: u64, lane: u64, require_tracked: bool) {
        let bit = 1u64 << (lane & (LANES_PER_KEY - 1));
        if require_tracked {
            if let Some(mask) = self.lanes.get_mut(&key) {
                *mask |= bit;
            }
        } else {
            *self.lanes.entry(key).or_insert(0) |= bit;
        }
    }

    fn lane_count(&self, key: u64) -> u64 {
        self.lanes
            .get(&key)
            .map(|m| u64::from(m.count_ones()))
            .unwrap_or(0)
    }

    fn lane_clear(&mut self, key: u64) {
        self.lanes.remove(&key);
    }

    fn memory_bytes(&self) -> u64 {
        // Hash-map entries are (u64 key, u64 value) plus per-entry
        // bookkeeping; 3 words per entry is a fair load-factor-adjusted
        // estimate for the gauge.
        ((self.counts.capacity() + self.lanes.capacity()) as u64) * 24
    }

    fn gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("freq_tracked_keys", self.counts.len() as f64));
        out.push(("freq_tracked_lane_keys", self.lanes.len() as f64));
        out.push(("freq_memory_bytes", self.memory_bytes() as f64));
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        let sorted = |m: &FnvHashMap<u64, u64>| {
            let mut entries: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
            entries.sort_unstable_by_key(|&(k, _)| k);
            entries
        };
        w.seq_with(&sorted(&self.counts), |w, &(k, v)| {
            w.u64(k);
            w.u64(v);
        });
        w.seq_with(&sorted(&self.lanes), |w, &(k, v)| {
            w.u64(k);
            w.u64(v);
        });
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let read_map = |r: &mut SnapshotReader<'_>,
                            what: &str|
         -> Result<FnvHashMap<u64, u64>, SnapshotError> {
            let len = r.seq_len(16)?;
            let mut map = FnvHashMap::default();
            for _ in 0..len {
                let k = r.u64()?;
                let v = r.u64()?;
                if map.insert(k, v).is_some() {
                    return Err(SnapshotError::Corrupt(format!(
                        "duplicate {what} key {k} in exact frequency tracker"
                    )));
                }
            }
            Ok(map)
        };
        self.counts = read_map(r, "count")?;
        self.lanes = read_map(r, "lane")?;
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn FrequencyTracker> {
        Box::new(self.clone())
    }
}

/// One cache line of sketch counters: 128 4-bit counters in four 32-counter
/// segments (two `u64` words each). Each hash row owns one segment, so a
/// key's up-to-4 counters land in the same 64-byte line.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block([u64; 8]);

impl Block {
    const ZERO: Block = Block([0; 8]);

    #[inline]
    fn get(&self, segment: usize, counter: usize) -> u64 {
        let word = segment * 2 + (counter >> 4);
        (self.0[word] >> ((counter & 15) * 4)) & 0xF
    }

    #[inline]
    fn bump(&mut self, segment: usize, counter: usize) -> bool {
        let word = segment * 2 + (counter >> 4);
        let shift = (counter & 15) * 4;
        if (self.0[word] >> shift) & 0xF == CMS_COUNTER_MAX {
            return false;
        }
        self.0[word] += 1 << shift;
        true
    }

    #[inline]
    fn halve(&mut self) {
        for word in &mut self.0 {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
    }
}

/// A 4-bit CountMinSketch with TinyLFU-style aging. All storage is the
/// fixed `blocks` vector — no heap growth after construction.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    blocks: Vec<Block>,
    /// Configured (pre-rounding) width, kept for `kind()` stability.
    width: u32,
    depth: u32,
    /// Low-bit mask selecting a block (blocks.len() is a power of two).
    block_mask: u64,
    /// Recorded additions since the last aging; reaching `sample_period`
    /// halves every counter.
    additions: u64,
    /// Additions between agings: 10× the effective width, after Caffeine.
    sample_period: u64,
    /// Agings performed (monotone; snapshot-persisted for telemetry).
    agings: u64,
}

impl CountMinSketch {
    /// A sketch with at least `width` counters per row and `depth` rows.
    /// The block count is the next power of two holding `width` counters
    /// per 32-counter segment, so the effective width can exceed `width`.
    pub fn new(width: u32, depth: u32) -> Self {
        let width = width.clamp(CMS_MIN_WIDTH, CMS_MAX_WIDTH);
        let depth = depth.clamp(1, CMS_MAX_DEPTH);
        let blocks = (width.div_ceil(32) as usize).next_power_of_two();
        CountMinSketch {
            blocks: vec![Block::ZERO; blocks],
            width,
            depth,
            block_mask: blocks as u64 - 1,
            additions: 0,
            sample_period: (blocks as u64 * 32).saturating_mul(10),
            agings: 0,
        }
    }

    /// Counters per row after rounding to whole blocks.
    pub fn effective_width(&self) -> u64 {
        self.blocks.len() as u64 * 32
    }

    /// Agings performed so far.
    pub fn agings(&self) -> u64 {
        self.agings
    }

    /// splitmix64 finalizer: full-avalanche key spreading, so sequential
    /// page numbers land in unrelated blocks.
    #[inline]
    fn spread(key: u64) -> u64 {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// (block index, per-row counter indices) for `key`. Row `i` uses an
    /// independent byte of a second mix, so rows collide independently.
    #[inline]
    fn index(&self, key: u64) -> (usize, [usize; CMS_MAX_DEPTH as usize]) {
        let h = Self::spread(key);
        let block = (h & self.block_mask) as usize;
        let h2 = Self::spread(h ^ 0xA55A_5AA5_55AA_AA55);
        let mut counters = [0usize; CMS_MAX_DEPTH as usize];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = ((h2 >> (i * 8)) & 31) as usize;
        }
        (block, counters)
    }

    fn saturation_scan(&self) -> (u64, u64) {
        let (mut nonzero, mut saturated) = (0u64, 0u64);
        for block in &self.blocks {
            for segment in 0..self.depth as usize {
                for counter in 0..32 {
                    match block.get(segment, counter) {
                        0 => {}
                        CMS_COUNTER_MAX => {
                            nonzero += 1;
                            saturated += 1;
                        }
                        _ => nonzero += 1,
                    }
                }
            }
        }
        (nonzero, saturated)
    }

    fn lane_key(key: u64, lane: u64) -> u64 {
        key.wrapping_mul(LANES_PER_KEY)
            .wrapping_add(lane & (LANES_PER_KEY - 1))
    }
}

impl FrequencyTracker for CountMinSketch {
    fn kind(&self) -> FrequencyBackendKind {
        FrequencyBackendKind::Cms {
            width: self.width,
            depth: self.depth,
        }
    }

    fn record(&mut self, key: u64) {
        let (block, counters) = self.index(key);
        let mut bumped = false;
        for (segment, &counter) in counters.iter().take(self.depth as usize).enumerate() {
            bumped |= self.blocks[block].bump(segment, counter);
        }
        if bumped {
            self.additions += 1;
            if self.additions >= self.sample_period {
                self.halve_all();
            }
        }
    }

    fn estimate(&self, key: u64) -> u64 {
        let (block, counters) = self.index(key);
        counters
            .iter()
            .take(self.depth as usize)
            .enumerate()
            .map(|(segment, &counter)| self.blocks[block].get(segment, counter))
            .min()
            .unwrap_or(0)
    }

    fn forget(&mut self, _key: u64) {
        // A sketch cannot forget one key; aging decays stale entries.
    }

    fn halve_all(&mut self) {
        for block in &mut self.blocks {
            block.halve();
        }
        self.additions /= 2;
        self.agings += 1;
    }

    fn reset(&mut self) {
        self.blocks.fill(Block::ZERO);
        self.additions = 0;
    }

    fn enumerate_sorted(&self) -> Option<Vec<(u64, u64)>> {
        None
    }

    fn lane_touch(&mut self, key: u64, lane: u64, _require_tracked: bool) {
        // Membership is not testable in a sketch, so `require_tracked`
        // degrades to an unconditional record (a documented approximation).
        self.record(Self::lane_key(key, lane));
    }

    fn lane_count(&self, key: u64) -> u64 {
        (0..LANES_PER_KEY)
            .filter(|&lane| self.estimate(Self::lane_key(key, lane)) > 0)
            .count() as u64
    }

    fn lane_clear(&mut self, _key: u64) {
        // No per-key clearing; stale lane counters decay by aging.
    }

    fn memory_bytes(&self) -> u64 {
        (self.blocks.len() * std::mem::size_of::<Block>()) as u64
    }

    fn gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        let (nonzero, saturated) = self.saturation_scan();
        let total = (self.effective_width() * u64::from(self.depth)).max(1);
        out.push(("freq_sketch_occupancy", nonzero as f64 / total as f64));
        out.push(("freq_sketch_saturation", saturated as f64 / total as f64));
        out.push(("freq_sketch_agings", self.agings as f64));
        out.push(("freq_memory_bytes", self.memory_bytes() as f64));
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.additions);
        w.u64(self.agings);
        w.usize(self.blocks.len());
        for block in &self.blocks {
            for word in block.0 {
                w.u64(word);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.additions = r.u64()?;
        self.agings = r.u64()?;
        let blocks = r.usize()?;
        if blocks != self.blocks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "sketch image has {blocks} block(s), this configuration expects {}",
                self.blocks.len()
            )));
        }
        for block in &mut self.blocks {
            for word in &mut block.0 {
                *word = r.u64()?;
            }
        }
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn FrequencyTracker> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Block>(), 64);
        assert_eq!(std::mem::align_of::<Block>(), 64);
    }

    #[test]
    fn parse_accepts_canonical_labels_and_round_trips() {
        assert_eq!(
            FrequencyBackendKind::parse("exact").unwrap(),
            FrequencyBackendKind::Exact
        );
        let cms = FrequencyBackendKind::parse("cms:4096x4").unwrap();
        assert_eq!(
            cms,
            FrequencyBackendKind::Cms {
                width: 4096,
                depth: 4
            }
        );
        assert_eq!(cms.label(), "cms:4096x4");
        assert_eq!(
            FrequencyBackendKind::parse(&cms.label()).unwrap(),
            cms
        );
        assert_eq!(FrequencyBackendKind::default().label(), "exact");
    }

    #[test]
    fn parse_errors_are_actionable() {
        let e = FrequencyBackendKind::parse("lfu").unwrap_err();
        assert!(e.contains("lfu") && e.contains("exact") && e.contains("cms:<width>x<depth>"));
        let e = FrequencyBackendKind::parse("cms:4096").unwrap_err();
        assert!(e.contains("cms:<width>x<depth>"), "{e}");
        let e = FrequencyBackendKind::parse("cms:axb").unwrap_err();
        assert!(e.contains("width"), "{e}");
        let e = FrequencyBackendKind::parse("cms:4x4").unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        let e = FrequencyBackendKind::parse("cms:4096x9").unwrap_err();
        assert!(e.contains("depth") && e.contains("out of range"), "{e}");
    }

    #[test]
    fn exact_tracker_counts_and_lanes_match_hash_map_behaviour() {
        let mut t = ExactTracker::new();
        t.record(7);
        t.record(7);
        t.record(9);
        assert_eq!(t.estimate(7), 2);
        assert_eq!(t.estimate(9), 1);
        assert_eq!(t.estimate(8), 0);
        assert_eq!(t.enumerate_sorted().unwrap(), vec![(7, 2), (9, 1)]);
        t.forget(9);
        assert_eq!(t.estimate(9), 0);
        t.halve_all();
        assert_eq!(t.estimate(7), 1);
        t.reset();
        assert_eq!(t.estimate(7), 0);

        // Lane family: untracked touches require an unconditional start.
        t.lane_touch(1, 5, true);
        assert_eq!(t.lane_count(1), 0);
        t.lane_touch(1, 5, false);
        t.lane_touch(1, 6, true);
        t.lane_touch(1, 6, true);
        assert_eq!(t.lane_count(1), 2);
        t.lane_clear(1);
        assert_eq!(t.lane_count(1), 0);
    }

    #[test]
    fn sketch_estimates_and_saturates() {
        let mut s = CountMinSketch::new(1024, 4);
        for _ in 0..5 {
            s.record(42);
        }
        assert!(s.estimate(42) >= 5);
        for _ in 0..100 {
            s.record(42);
        }
        assert_eq!(s.estimate(42), CMS_COUNTER_MAX);
        s.halve_all();
        assert!(s.estimate(42) <= CMS_COUNTER_MAX / 2);
        s.reset();
        assert_eq!(s.estimate(42), 0);
    }

    #[test]
    fn sketch_heap_is_fixed_after_construction() {
        let mut s = CountMinSketch::new(256, 4);
        let before = s.memory_bytes();
        let ptr = s.blocks.as_ptr();
        for key in 0..100_000u64 {
            s.record(key);
            s.lane_touch(key, key % 64, true);
        }
        assert_eq!(s.memory_bytes(), before);
        assert_eq!(s.blocks.as_ptr(), ptr, "sketch storage must never move");
    }

    #[test]
    fn sketch_ages_automatically_at_the_sample_period() {
        let mut s = CountMinSketch::new(CMS_MIN_WIDTH, 1);
        assert_eq!(s.agings(), 0);
        // sample_period = 32 * 10; distinct keys so counters stay unsaturated.
        for key in 0..s.sample_period {
            s.record(key);
        }
        assert!(s.agings() >= 1);
    }

    #[test]
    fn sketch_lane_counts_track_distinct_lanes() {
        let mut s = CountMinSketch::new(4096, 4);
        assert_eq!(s.lane_count(3), 0);
        s.lane_touch(3, 0, false);
        s.lane_touch(3, 0, true);
        s.lane_touch(3, 17, true);
        let count = s.lane_count(3);
        // Exactly-2 up to (unlikely at this width) collisions.
        assert!((2..=4).contains(&count), "lane count {count}");
    }

    #[test]
    fn tracker_restore_rejects_bad_tags_and_mismatched_geometry() {
        let mut w = SnapshotWriter::new();
        w.u8(9);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            restore_tracker(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));

        let mut w = SnapshotWriter::new();
        w.u8(1);
        w.u32(7); // below CMS_MIN_WIDTH
        w.u32(4);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            restore_tracker(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    fn image(t: &dyn FrequencyTracker) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        save_tracker(t, &mut w);
        w.into_bytes()
    }

    proptest! {
        /// Between agings the sketch never undercounts: the estimate is at
        /// least the true count, capped at counter saturation.
        #[test]
        fn prop_sketch_never_undercounts(
            keys in proptest::collection::vec(0u64..1_000_000, 1..60),
            width in 32u32..4096,
            depth in 1u32..5,
        ) {
            let mut s = CountMinSketch::new(width, depth);
            let mut truth: std::collections::BTreeMap<u64, u64> = Default::default();
            for &k in &keys {
                s.record(k);
                *truth.entry(k).or_insert(0) += 1;
            }
            prop_assert_eq!(s.agings(), 0); // too few additions to age
            for (&k, &count) in &truth {
                prop_assert!(s.estimate(k) >= count.min(CMS_COUNTER_MAX));
            }
        }

        /// Halving is monotone: no estimate grows, and every estimate is at
        /// least half its old value (floor division).
        #[test]
        fn prop_sketch_halving_is_monotone(
            keys in proptest::collection::vec(0u64..100_000, 1..80),
            width in 32u32..2048,
            depth in 1u32..5,
        ) {
            let mut s = CountMinSketch::new(width, depth);
            for &k in &keys {
                s.record(k);
            }
            let before: Vec<u64> = keys.iter().map(|&k| s.estimate(k)).collect();
            s.halve_all();
            for (&k, &b) in keys.iter().zip(&before) {
                let after = s.estimate(k);
                prop_assert!(after <= b);
                prop_assert!(after >= b / 2);
            }
        }

        /// save → restore → save is byte-identical for both backends, and
        /// the restored tracker estimates identically.
        #[test]
        fn prop_tracker_persist_round_trip(
            ops in proptest::collection::vec((0u64..500, 0u64..64, 0u8..4), 0..120),
            width in 32u32..1024,
            depth in 1u32..5,
            exact in proptest::arbitrary::any::<bool>(),
        ) {
            let kind = if exact {
                FrequencyBackendKind::Exact
            } else {
                FrequencyBackendKind::Cms { width, depth }
            };
            let mut t = kind.build();
            for &(key, lane, op) in &ops {
                match op {
                    0 => t.record(key),
                    1 => t.lane_touch(key, lane, lane % 2 == 0),
                    2 => t.halve_all(),
                    _ => t.forget(key),
                }
            }
            let bytes = image(t.as_ref());
            let mut r = SnapshotReader::new(&bytes);
            let back = restore_tracker(&mut r).unwrap();
            prop_assert!(r.is_exhausted());
            prop_assert_eq!(image(back.as_ref()), bytes.clone());
            prop_assert_eq!(back.kind(), t.kind());
            for &(key, _, _) in &ops {
                prop_assert_eq!(back.estimate(key), t.estimate(key));
                prop_assert_eq!(back.lane_count(key), t.lane_count(key));
            }
            // Truncation strictly inside the image is a typed error.
            if bytes.len() > 1 {
                let mut r = SnapshotReader::new(&bytes[..bytes.len() / 2]);
                prop_assert!(restore_tracker(&mut r).is_err());
            }
        }
    }
}
