//! Versioned, length-framed binary snapshots of simulator state.
//!
//! Warming up a simulated machine costs a third of every run, and every
//! sweep cell sharing a (design, workload, seed, warmup) prefix re-pays it.
//! This module is the contract that lets the warmed state leave memory: a
//! [`Persist`] trait every stateful component implements, a
//! [`SnapshotWriter`]/[`SnapshotReader`] pair over a length-framed binary
//! encoding, and a [`SnapshotHeader`] that pins the image to a model
//! revision and a configuration key so stale images are rejected with a
//! typed [`SnapshotError`] instead of silently corrupting results.
//!
//! Format:
//!
//! * an 8-byte magic ([`SNAPSHOT_MAGIC`]) and a `u32` format version
//!   ([`SNAPSHOT_FORMAT`]),
//! * the header: model revision (`u32`), FNV-1a hash of the snapshot's key
//!   material (`u64`), and the executed-instruction count at capture
//!   (`u64`),
//! * a sequence of **sections**, each framed as an 8-byte FNV-1a label tag
//!   plus a `u32` byte length. Readers must consume a section exactly:
//!   under- or over-reads are [`SnapshotError::Corrupt`], a wrong label is
//!   a framing error naming both labels, and a section running past the
//!   end of the image is [`SnapshotError::Truncated`].
//!
//! All integers are little-endian. Maps are serialized in sorted key order
//! so that `save → restore → save` is byte-identical (the round-trip
//! property the snapshot tests enforce).

use crate::hash::fnv1a64;
use std::fmt;

/// Leading magic bytes of a snapshot image.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BSHSNAP\0";
/// The snapshot encoding version this build writes and understands.
/// Bump when the framing changes, or when a component's persisted layout
/// changes shape without a model-revision bump (the model revision tracks
/// simulated behaviour, not encoding): components restore sequentially, so
/// a layout shift would otherwise misalign every downstream section.
/// Format 2: frequency-tracker images replaced the raw per-page count/mask
/// maps inside HMA, the footprint predictor and FBR.
pub const SNAPSHOT_FORMAT: u32 = 2;

/// Everything that can go wrong decoding a snapshot. Mirrors the typed
/// errors of `trace_file.rs`: every variant is actionable and none panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The image does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The image's format version is one this build cannot decode.
    UnsupportedFormat(u32),
    /// The image was captured under a different model revision; the warmed
    /// state would not match what this build simulates.
    StaleRevision {
        /// Revision embedded in the image.
        found: u32,
        /// Revision this build expects.
        expected: u32,
    },
    /// The image was captured for a different configuration/workload key.
    KeyMismatch {
        /// Key hash embedded in the image.
        found: u64,
        /// Key hash the caller expects.
        expected: u64,
    },
    /// The image ended in the middle of the named structure.
    Truncated(&'static str),
    /// Structurally invalid content; the message says what and where.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(
                f,
                "not a banshee snapshot: expected the {:?} magic",
                std::str::from_utf8(&SNAPSHOT_MAGIC[..7]).unwrap_or("BSHSNAP")
            ),
            SnapshotError::UnsupportedFormat(v) => write!(
                f,
                "unsupported snapshot format {v} (this build reads format {SNAPSHOT_FORMAT})"
            ),
            SnapshotError::StaleRevision { found, expected } => write!(
                f,
                "stale snapshot: captured at model revision {found}, this build is revision {expected}"
            ),
            SnapshotError::KeyMismatch { found, expected } => write!(
                f,
                "snapshot key mismatch: image was captured for key {found:016x}, expected {expected:016x}"
            ),
            SnapshotError::Truncated(what) => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The validated snapshot header: what pins an image to a build and a
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// `MODEL_REVISION` of the build that captured the image.
    pub model_revision: u32,
    /// FNV-1a hash of the snapshot's key material (configuration + workload
    /// identity, warmup included, post-warmup knobs excluded).
    pub key_hash: u64,
    /// Executed instructions at the capture point.
    pub instructions: u64,
}

impl SnapshotHeader {
    /// Byte length of magic + format word + header fields.
    pub const ENCODED_LEN: usize = 8 + 4 + 4 + 8 + 8;

    /// Append magic, format version and header fields to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT.to_le_bytes());
        out.extend_from_slice(&self.model_revision.to_le_bytes());
        out.extend_from_slice(&self.key_hash.to_le_bytes());
        out.extend_from_slice(&self.instructions.to_le_bytes());
    }

    /// Decode and validate magic + format from the front of `bytes`,
    /// returning the header. Does not touch the section payload, so it is
    /// cheap enough for store-level screening of candidate images.
    pub fn peek(bytes: &[u8]) -> Result<SnapshotHeader, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated("the snapshot magic"));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < Self::ENCODED_LEN {
            return Err(SnapshotError::Truncated("the snapshot header"));
        }
        let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let quad = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let format = word(8);
        if format != SNAPSHOT_FORMAT {
            return Err(SnapshotError::UnsupportedFormat(format));
        }
        Ok(SnapshotHeader {
            model_revision: word(12),
            key_hash: quad(16),
            instructions: quad(24),
        })
    }

    /// Reject the image unless it was captured at `expected_revision` for
    /// `expected_key` — the stale-state gate.
    pub fn validate(&self, expected_revision: u32, expected_key: u64) -> Result<(), SnapshotError> {
        if self.model_revision != expected_revision {
            return Err(SnapshotError::StaleRevision {
                found: self.model_revision,
                expected: expected_revision,
            });
        }
        if self.key_hash != expected_key {
            return Err(SnapshotError::KeyMismatch {
                found: self.key_hash,
                expected: expected_key,
            });
        }
        Ok(())
    }
}

/// A component that can externalize its state into a snapshot and rebuild
/// itself from one.
///
/// Implementations must uphold the round-trip law the snapshot tests
/// enforce: `save → restore → save` is byte-identical, and the restored
/// value behaves identically to the original under every subsequent
/// operation. Anything order-dependent (recency lists, FIFO queues) is
/// serialized in its semantic order; hash maps are serialized sorted by
/// key. Derived/scratch state (caches of the config, reusable buffers) is
/// rebuilt by the caller, not persisted.
pub trait Persist: Sized {
    /// Append this component's state to the writer.
    fn save(&self, w: &mut SnapshotWriter);

    /// Rebuild the component from the reader, or fail with a typed error.
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

/// Appends length-framed sections and primitive values to a snapshot image.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer whose image starts with `header`.
    pub fn with_header(header: SnapshotHeader) -> Self {
        let mut w = Self::new();
        header.write(&mut w.buf);
        w
    }

    /// The finished image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one length-framed, label-tagged section whose body is whatever
    /// `f` writes. Sections may nest.
    pub fn section<F: FnOnce(&mut Self)>(&mut self, label: &str, f: F) {
        self.buf
            .extend_from_slice(&fnv1a64(label.as_bytes()).to_le_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        f(self);
        let body = self.buf.len() - (len_at + 4);
        let body: u32 = body.try_into().expect("snapshot section exceeds 4 GiB");
        self.buf[len_at..len_at + 4].copy_from_slice(&body.to_le_bytes());
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` by its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-framed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a length-framed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write an iterator of [`Persist`] values as a length-framed sequence.
    /// The caller is responsible for iterating in a canonical order.
    pub fn seq<'a, T: Persist + 'a>(&mut self, items: impl ExactSizeIterator<Item = &'a T>) {
        self.usize(items.len());
        for item in items {
            item.save(self);
        }
    }

    /// Write a slice as a length-framed sequence, encoding each element with
    /// `f`. For composite elements that do not themselves implement
    /// [`Persist`] (tuples, private struct internals).
    pub fn seq_with<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Decodes a snapshot image: primitive values and length-framed sections,
/// with every read bounded by the innermost open section.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// End offsets of the open sections, innermost last.
    limits: Vec<usize>,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over a full image (header included — use
    /// [`SnapshotReader::header`] to consume it).
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader {
            bytes,
            pos: 0,
            limits: Vec::new(),
        }
    }

    /// Decode the leading header (magic, format, fields) and advance past
    /// it.
    pub fn header(&mut self) -> Result<SnapshotHeader, SnapshotError> {
        let header = SnapshotHeader::peek(&self.bytes[self.pos..])?;
        self.pos += SnapshotHeader::ENCODED_LEN;
        Ok(header)
    }

    /// The innermost read bound.
    fn limit(&self) -> usize {
        self.limits.last().copied().unwrap_or(self.bytes.len())
    }

    /// Bytes left before the innermost bound.
    pub fn remaining(&self) -> usize {
        self.limit() - self.pos
    }

    /// True if the reader consumed the image exactly (no trailing bytes).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated(what));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Enter the next section, which must carry `label`'s tag, run `f` over
    /// its body, and verify the body was consumed exactly.
    pub fn section<T>(
        &mut self,
        label: &str,
        f: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        let tag = u64::from_le_bytes(self.take(8, "a section tag")?.try_into().unwrap());
        let expected = fnv1a64(label.as_bytes());
        if tag != expected {
            return Err(SnapshotError::Corrupt(format!(
                "expected section `{label}` (tag {expected:016x}), found tag {tag:016x}"
            )));
        }
        let len =
            u32::from_le_bytes(self.take(4, "a section length")?.try_into().unwrap()) as usize;
        if self.remaining() < len {
            return Err(SnapshotError::Truncated("a section body"));
        }
        self.limits.push(self.pos + len);
        let result = f(self);
        let end = self.limits.pop().expect("section limit stack underflow");
        let value = result?;
        if self.pos != end {
            return Err(SnapshotError::Corrupt(format!(
                "section `{label}` has {} unread byte(s)",
                end - self.pos
            )));
        }
        Ok(value)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "a u8")?[0])
    }

    /// Read a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!(
                "invalid bool byte {other:#04x}"
            ))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, "a u32")?.try_into().unwrap(),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, "a u64")?.try_into().unwrap(),
        ))
    }

    /// Read a `usize` stored as a `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("usize value {v} overflows this platform")))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-framed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.usize()?;
        if self.remaining() < len {
            return Err(SnapshotError::Truncated("a byte string"));
        }
        self.take(len, "a byte string")
    }

    /// Read a length-framed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapshotError::Corrupt(format!("invalid UTF-8 in string: {e}")))
    }

    /// Read the length of a sequence written by [`SnapshotWriter::seq`],
    /// screening it against the bytes actually available (`min_item_bytes`
    /// is the smallest possible encoding of one item) so a corrupt count
    /// cannot cause a huge allocation.
    pub fn seq_len(&mut self, min_item_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.usize()?;
        if len.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "sequence claims {len} item(s) but only {} byte(s) remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Read a length-framed sequence of [`Persist`] values.
    pub fn seq<T: Persist>(&mut self, min_item_bytes: usize) -> Result<Vec<T>, SnapshotError> {
        let len = self.seq_len(min_item_bytes)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(self)?);
        }
        Ok(out)
    }
}

impl Persist for u64 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u64()
    }
}

impl Persist for u32 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u32(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.u32()
    }
}

impl Persist for bool {
    fn save(&self, w: &mut SnapshotWriter) {
        w.bool(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.bool()
    }
}

impl Persist for f64 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.f64(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.f64()
    }
}

impl Persist for usize {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.usize()
    }
}

impl Persist for crate::addr::Addr {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.raw());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::addr::Addr::new(r.u64()?))
    }
}

impl Persist for crate::addr::LineAddr {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.raw());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::addr::LineAddr::new(r.u64()?))
    }
}

impl Persist for crate::addr::PageNum {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.raw());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::addr::PageNum::new(r.u64()?))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.save(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(if r.bool()? {
            Some(T::restore(r)?)
        } else {
            None
        })
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.seq(self.iter());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.seq(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SnapshotHeader {
        SnapshotHeader {
            model_revision: 2,
            key_hash: 0xDEAD_BEEF_F00D_CAFE,
            instructions: 1_500_000,
        }
    }

    #[test]
    fn header_round_trip_and_validation() {
        let mut buf = Vec::new();
        header().write(&mut buf);
        let back = SnapshotHeader::peek(&buf).unwrap();
        assert_eq!(back, header());
        back.validate(2, 0xDEAD_BEEF_F00D_CAFE).unwrap();
        assert_eq!(
            back.validate(3, 0xDEAD_BEEF_F00D_CAFE),
            Err(SnapshotError::StaleRevision {
                found: 2,
                expected: 3
            })
        );
        assert_eq!(
            back.validate(2, 1),
            Err(SnapshotError::KeyMismatch {
                found: 0xDEAD_BEEF_F00D_CAFE,
                expected: 1
            })
        );
    }

    #[test]
    fn header_rejects_bad_magic_format_truncation() {
        assert_eq!(
            SnapshotHeader::peek(b"NOTSNAP\0rest"),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            SnapshotHeader::peek(&SNAPSHOT_MAGIC[..5]),
            Err(SnapshotError::Truncated("the snapshot magic"))
        );
        let mut buf = Vec::new();
        header().write(&mut buf);
        assert_eq!(
            SnapshotHeader::peek(&buf[..SnapshotHeader::ENCODED_LEN - 3]),
            Err(SnapshotError::Truncated("the snapshot header"))
        );
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SnapshotHeader::peek(&buf),
            Err(SnapshotError::UnsupportedFormat(99))
        );
    }

    #[test]
    fn sections_frame_and_verify_consumption() {
        let mut w = SnapshotWriter::new();
        w.section("outer", |w| {
            w.u64(7);
            w.section("inner", |w| w.str("hello"));
        });
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        let (n, s) = r
            .section("outer", |r| {
                let n = r.u64()?;
                let s = r.section("inner", |r| r.string())?;
                Ok((n, s))
            })
            .unwrap();
        assert_eq!((n, s.as_str()), (7, "hello"));
        assert!(r.is_exhausted());

        // Wrong label.
        let mut r = SnapshotReader::new(&bytes);
        let e = r.section("wrong", |r| r.u64()).unwrap_err();
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e}");

        // Under-consumption is caught.
        let mut r = SnapshotReader::new(&bytes);
        let e = r.section("outer", |r| r.u64()).unwrap_err();
        assert!(e.to_string().contains("unread"), "{e}");
    }

    #[test]
    fn primitive_round_trips() {
        let mut w = SnapshotWriter::new();
        w.u8(0xAB);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(12345);
        w.f64(-0.125);
        w.bytes(b"raw");
        w.str("text");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.string().unwrap(), "text");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_and_corruption_are_typed() {
        let mut w = SnapshotWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated("a u64")));

        let mut r = SnapshotReader::new(&[7u8]);
        assert!(matches!(r.bool(), Err(SnapshotError::Corrupt(_))));

        // A sequence length far beyond the remaining bytes is rejected
        // before allocation.
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.seq::<u64>(8), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let mut w = SnapshotWriter::new();
        Some(42u64).save(&mut w);
        Option::<u64>::None.save(&mut w);
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(Option::<u64>::restore(&mut r).unwrap(), Some(42));
        assert_eq!(Option::<u64>::restore(&mut r).unwrap(), None);
        assert_eq!(Vec::<u64>::restore(&mut r).unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }
}
