//! Criterion microbenchmarks of the hot structures on the memory-controller
//! path: the tag buffer, the FBR metadata engine, the SRAM tag-array cache,
//! the DRAM channel scheduler, the TLB and the workload generators.
//!
//! These are throughput benchmarks of the simulator's building blocks (they
//! also double as a regression guard for the simulation speed that the
//! experiment harness depends on).

use banshee::{BansheeConfig, CacheSetMetadata, FrequencyReplacement, TagBuffer};
use banshee_common::{Addr, LineAddr, PageNum, TrafficClass};
use banshee_dcache::{DCacheConfig, DramCacheController, MemRequest};
use banshee_dram::{DramConfig, DramDevice};
use banshee_memhier::{PteMapInfo, ReplacementPolicy, SetAssocCache, Tlb, TlbEntry};
use banshee_workloads::SpecProgram;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_tag_buffer(c: &mut Criterion) {
    c.bench_function("tag_buffer_lookup_insert", |b| {
        let mut tb = TagBuffer::new(1024, 8, 0.7);
        for i in 0..512u64 {
            tb.insert_remap(PageNum::new(i), PteMapInfo::cached_in((i % 4) as u8));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(tb.lookup(PageNum::new(i % 2048)));
            if i.is_multiple_of(64) {
                tb.drain();
            }
            tb.insert_clean(PageNum::new(i % 4096), PteMapInfo::NOT_CACHED);
        });
    });
}

fn bench_fbr(c: &mut Criterion) {
    c.bench_function("fbr_algorithm1_sampled_access", |b| {
        let cfg = BansheeConfig::paper_default();
        let mut fbr = FrequencyReplacement::new(&cfg);
        let mut set = CacheSetMetadata::new(4, 5);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(fbr.on_access(&mut set, i % 37, 0.3));
        });
    });
}

fn bench_sram_cache(c: &mut Criterion) {
    c.bench_function("llc_tag_array_access", |b| {
        let mut llc = SetAssocCache::new(8 * 1024 * 1024, 16, ReplacementPolicy::Lru);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37);
            black_box(llc.access(LineAddr::new(i % (1 << 20)), i.is_multiple_of(7)));
        });
    });
}

fn bench_dram_channel(c: &mut Criterion) {
    c.bench_function("dram_device_access", |b| {
        let mut dev = DramDevice::new(
            banshee_common::DramKind::InPackage,
            DramConfig::in_package_default(),
        );
        let mut now = 0u64;
        b.iter(|| {
            now += 4;
            black_box(dev.access(
                now,
                Addr::new((now * 64) % (1 << 30)),
                64,
                TrafficClass::HitData,
                false,
            ));
        });
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_lookup", |b| {
        let mut tlb = Tlb::new(64);
        for i in 0..64u64 {
            tlb.fill(TlbEntry {
                vpage: i,
                ppage: PageNum::new(i),
                info: PteMapInfo::NOT_CACHED,
                size: banshee_memhier::PageSize::Base4K,
            });
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(tlb.lookup(i % 96));
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("synthetic_trace_mcf", |b| {
        let mut gen = SpecProgram::Mcf.build(16 << 20, 0, 1);
        b.iter(|| black_box(gen.next_access()));
    });
}

fn bench_banshee_controller(c: &mut Criterion) {
    c.bench_function("banshee_controller_access", |b| {
        let cfg = DCacheConfig::scaled(banshee_common::MemSize::mib(16));
        let mut ctrl = banshee::BansheeController::from_dcache(&cfg);
        // One reused sink, exactly as the system simulator drives it.
        let mut sink = banshee_dcache::PlanSink::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = Addr::new((i % 100_000) * 64);
            let hint = ctrl.current_mapping(addr.page());
            sink.reset();
            ctrl.access(&MemRequest::demand(addr, 0).with_hint(hint), i, &mut sink);
            black_box(sink.op_count());
        });
    });
}

criterion_group!(
    components,
    bench_tag_buffer,
    bench_fbr,
    bench_sram_cache,
    bench_dram_channel,
    bench_tlb,
    bench_trace_generation,
    bench_banshee_controller
);
criterion_main!(components);
