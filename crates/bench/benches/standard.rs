//! Standard-scale throughput record: sequential vs. sharded execution.
//!
//! This is the Standard-scale `BENCH_` entry carried as a ROADMAP follow-up
//! since PR 5, recorded under model revision 2: every figure-4 design run at
//! the Standard experiment geometry (16 cores, 32 MiB DRAM cache), once
//! sequentially (`shards = 1`) and once through the sharded execution
//! engine. Both runs must produce byte-identical `SimResult` JSON — the
//! bench *asserts* this, so a green run doubles as an end-to-end
//! equivalence check at full experiment geometry. Results are tracked
//! PR-over-PR in `BENCH_standard.json` at the repository root; the CI
//! perf-smoke job gates on it alongside `BENCH_hotpath.json`.
//!
//! ```text
//! cargo bench -p banshee_bench --bench standard
//! ```
//!
//! Environment knobs:
//!
//! * `BANSHEE_STANDARD_INSTRUCTIONS` — measured instructions per run
//!   (default 8,000,000, the Standard scale; warm-up always matches the
//!   measured budget, as Standard experiments do). CI runs smaller.
//! * `BANSHEE_STANDARD_SHARDS` — shard thread count for the sharded run
//!   (default 4, clamped to the host's available parallelism with a
//!   printed notice — a 1-thread host records speedup 1.0 honestly).
//! * `BANSHEE_STANDARD_OUT` — output path for the JSON report (default
//!   `BENCH_standard.json` at the workspace root).

use banshee_bench::runner::{ExperimentScale, Runner};
use banshee_dcache::DramCacheDesign;
use banshee_exec::JobPool;
use banshee_sim::{SimConfig, System};
use banshee_workloads::{SpecProgram, WorkloadKind};
use serde::Serialize;
use std::time::Instant;

/// Sequential and sharded throughput of one design.
#[derive(Debug, Clone, Serialize)]
struct DesignRow {
    design: String,
    /// Simulated instructions per timed run (warm-up + measured phase).
    instructions: u64,
    /// Sequential (`shards = 1`) wall-clock seconds.
    sequential_seconds: f64,
    /// Sequential simulated instructions per wall-clock second.
    sequential_instr_per_sec: f64,
    /// Sharded wall-clock seconds (same work, `shards` threads).
    sharded_seconds: f64,
    /// Sharded simulated instructions per wall-clock second.
    sharded_instr_per_sec: f64,
    /// Sharded speedup over sequential (1.0 on a single-thread host).
    speedup: f64,
}

/// The whole report, written to `BENCH_standard.json`.
#[derive(Debug, Clone, Serialize)]
struct StandardReport {
    /// The simulation model revision these numbers were recorded under.
    model_revision: u32,
    scale: String,
    /// Measured (post-warm-up) instructions per run.
    measured_instructions: u64,
    /// Warm-up instructions per run (equal to the measured budget, as at
    /// Standard scale).
    warmup_instructions: u64,
    /// Workload driven through every design.
    workload: String,
    /// Shard threads requested for the sharded runs.
    shards_requested: usize,
    /// Shard threads actually used (clamped to the host).
    shards_used: usize,
    /// The host's available parallelism when recorded.
    host_threads: usize,
    designs: Vec<DesignRow>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Run one configuration to completion, returning wall-clock seconds and
/// the result serialized to JSON (for the equivalence assertion).
fn timed_run(cfg: SimConfig, runner: &Runner, kind: WorkloadKind, shards: usize) -> (f64, String) {
    let workload = runner.workload(kind);
    let name = workload.name();
    let mut system = System::new(cfg, &workload);
    system.set_shards(shards);
    let t0 = Instant::now();
    let result = system.run(&name);
    let seconds = t0.elapsed().as_secs_f64();
    assert!(result.instructions > 0, "simulation ran no instructions");
    (
        seconds,
        serde_json::to_string_pretty(&result).expect("result serializes"),
    )
}

fn main() {
    let measured = env_u64("BANSHEE_STANDARD_INSTRUCTIONS", 8_000_000);
    let shards_requested = env_u64("BANSHEE_STANDARD_SHARDS", 4).max(1) as usize;
    let host_threads = JobPool::available_workers();
    let shards_used = shards_requested.min(host_threads).max(1);
    if shards_used < shards_requested {
        println!(
            "note: clamped shards {shards_requested} -> {shards_used} \
             ({host_threads} available thread(s))"
        );
    }
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);
    let runner = Runner::new(ExperimentScale::Standard);
    let warmup = measured;

    let designs = DramCacheDesign::figure4_lineup();
    let mut rows = Vec::new();
    println!(
        "standard: {measured} measured + {warmup} warm-up instructions per design, workload {}, \
         sequential vs {shards_used} shard(s)",
        kind.name()
    );
    for design in designs {
        let mut cfg = runner.config(design);
        cfg.total_instructions = measured;
        cfg.warmup_instructions = warmup;

        let (seq_seconds, seq_json) = timed_run(cfg.clone(), &runner, kind, 1);
        let (shard_seconds, shard_json) = timed_run(cfg, &runner, kind, shards_used);
        assert_eq!(
            shard_json,
            seq_json,
            "{} diverged between sequential and {shards_used}-shard execution",
            design.label()
        );

        let total = measured + warmup;
        let seq_ips = total as f64 / seq_seconds;
        let shard_ips = total as f64 / shard_seconds;
        let speedup = seq_seconds / shard_seconds;
        println!(
            "  {:<24} seq {:>8.3} s ({:>12.0} instr/s)   sharded {:>8.3} s ({:>12.0} instr/s)   {:>5.2}x",
            design.label(),
            seq_seconds,
            seq_ips,
            shard_seconds,
            shard_ips,
            speedup
        );
        rows.push(DesignRow {
            design: design.label(),
            instructions: total,
            sequential_seconds: seq_seconds,
            sequential_instr_per_sec: seq_ips,
            sharded_seconds: shard_seconds,
            sharded_instr_per_sec: shard_ips,
            speedup,
        });
    }

    let report = StandardReport {
        model_revision: SimConfig::MODEL_REVISION,
        scale: ExperimentScale::Standard.name().to_string(),
        measured_instructions: measured,
        warmup_instructions: warmup,
        workload: kind.name(),
        shards_requested,
        shards_used,
        host_threads,
        designs: rows,
    };
    let out = std::env::var("BANSHEE_STANDARD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_standard.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_standard.json");
    println!("wrote {out}");
}
