//! Criterion wrappers around every paper experiment at smoke scale.
//!
//! `cargo bench` therefore exercises the code path of **every table and
//! figure** of the paper (Figures 4–9, Tables 1/5/6, the large-page and
//! BATMAN studies). These runs are deliberately tiny — they verify that each
//! experiment executes end-to-end and give a stable throughput number; the
//! real reproduction numbers come from the `experiments` binary at standard
//! scale (see `EXPERIMENTS.md`).

use banshee_bench::experiments;
use banshee_bench::runner::{ExperimentScale, Runner};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::{GraphKernel, SpecProgram, WorkloadKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn tiny_runner() -> Runner {
    Runner::new(ExperimentScale::Smoke)
}

fn tiny_workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Graph(GraphKernel::PageRank),
        WorkloadKind::Spec(SpecProgram::Mcf),
    ]
}

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("paper_experiments");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = configure(c);
    let runner = tiny_runner();
    let workloads = tiny_workloads();

    group.bench_function("fig4_fig5_fig6_matrix", |b| {
        b.iter(|| {
            let matrix = runner.run_matrix(&DramCacheDesign::figure4_lineup(), &workloads);
            let f4 = experiments::fig4::build(&matrix);
            let f5 = experiments::fig5::build(&matrix);
            let f6 = experiments::fig6::build(&matrix);
            (f4.points.len(), f5.bars.len(), f6.bars.len())
        })
    });

    group.bench_function("fig7_replacement_ablation", |b| {
        b.iter(|| experiments::fig7::run(&runner, &workloads[..1]).bars.len())
    });

    group.bench_function("fig8_latency_bandwidth_sweep", |b| {
        b.iter(|| {
            let fig = experiments::fig8::run(&runner, &workloads[..1]);
            fig.latency.len() + fig.bandwidth.len()
        })
    });

    group.bench_function("fig9_sampling_sweep", |b| {
        b.iter(|| {
            experiments::fig9::run(&runner, &workloads[..1])
                .points
                .len()
        })
    });

    group.bench_function("table1_per_access_behaviour", |b| {
        b.iter(|| experiments::table1::run().len())
    });

    group.bench_function("table5_pt_update_overhead", |b| {
        b.iter(|| experiments::table5::run(&runner, &workloads[..1]).len())
    });

    group.bench_function("table6_associativity", |b| {
        b.iter(|| experiments::table6::run(&runner, &workloads[..1]).len())
    });

    group.bench_function("large_pages_study", |b| {
        b.iter(|| experiments::large_pages::run(&runner, &workloads[..1]).len())
    });

    group.bench_function("batman_study", |b| {
        b.iter(|| experiments::batman::run(&runner, &workloads[1..]).len())
    });

    group.finish();
}

criterion_group!(paper, bench_experiments);
criterion_main!(paper);
