//! End-to-end simulator throughput (instructions per second) per design.
//!
//! Unlike `components.rs` (microbenchmarks of individual structures), this
//! bench drives the *whole* per-access path — trace generation, TLB/page
//! table, SRAM hierarchy, DRAM-cache controller and DRAM timing — exactly as
//! an experiment cell does, and reports how many simulated instructions the
//! host executes per wall-clock second. That number is the scaling limit of
//! the experiment matrix, so it is tracked PR-over-PR in
//! `BENCH_hotpath.json` at the repository root (the CI perf-smoke job fails
//! on regressions against the committed baseline).
//!
//! ```text
//! cargo bench -p banshee_bench --bench hotpath
//! ```
//!
//! Environment knobs:
//!
//! * `BANSHEE_HOTPATH_INSTRUCTIONS` — measured instructions per design
//!   (default 3,000,000 — also what CI and the committed baseline use, so
//!   normalized comparisons stay at one scale).
//! * `BANSHEE_HOTPATH_REPEAT` — timed repetitions per design; the fastest
//!   is reported (default 1).
//! * `BANSHEE_HOTPATH_OUT` — output path for the JSON report (default
//!   `BENCH_hotpath.json` at the workspace root).

use banshee_bench::runner::{ExperimentScale, Runner};
use banshee_dcache::DramCacheDesign;
use banshee_sim::System;
use banshee_workloads::{SpecProgram, WorkloadKind};
use serde::Serialize;
use std::time::Instant;

/// Throughput of one design.
#[derive(Debug, Clone, Serialize)]
struct DesignThroughput {
    design: String,
    /// Simulated instructions per timed run (warm-up + measured phase).
    instructions: u64,
    /// Wall-clock seconds of the fastest repetition (warm-up + measured).
    seconds: f64,
    /// Wall-clock seconds the fastest repetition spent in warm-up. This is
    /// the part a warmed-snapshot resume skips, so the split shows how much
    /// of each design's cell cost snapshotting can recover.
    warmup_seconds: f64,
    /// Wall-clock seconds the fastest repetition spent in the measured phase.
    measured_seconds: f64,
    /// Simulated instructions per wall-clock second (whole run).
    instr_per_sec: f64,
}

/// The whole report, written to `BENCH_hotpath.json`.
#[derive(Debug, Clone, Serialize)]
struct HotpathReport {
    /// Measured (post-warm-up) instructions per run.
    measured_instructions: u64,
    /// Warm-up instructions per run.
    warmup_instructions: u64,
    /// Workload driven through every design.
    workload: String,
    /// Timed repetitions per design (fastest wins).
    repeat: u64,
    designs: Vec<DesignThroughput>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let measured = env_u64("BANSHEE_HOTPATH_INSTRUCTIONS", 3_000_000);
    let repeat = env_u64("BANSHEE_HOTPATH_REPEAT", 1).max(1);
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);

    // Quick-scale geometry: the same configs the experiment matrix uses,
    // with an overridable instruction budget.
    let runner = Runner::new(ExperimentScale::Quick);
    let warmup = measured / 2;

    let designs = DramCacheDesign::figure4_lineup();
    let mut rows = Vec::new();
    println!(
        "hotpath: {measured} measured + {warmup} warm-up instructions per design, workload {}",
        kind.name()
    );
    for design in designs {
        let mut best = f64::INFINITY;
        let mut best_warmup = 0.0;
        let mut best_measured = 0.0;
        for _ in 0..repeat {
            let mut cfg = runner.config(design);
            cfg.total_instructions = measured;
            cfg.warmup_instructions = warmup;
            let workload = runner.workload(kind);
            let name = workload.name();
            let mut system = System::new(cfg, &workload);
            let t0 = Instant::now();
            let warmed = system.warm_up();
            let warmup_elapsed = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let result = system.run_measured(&name, warmed);
            let measured_elapsed = t1.elapsed().as_secs_f64();
            assert!(result.instructions > 0, "simulation ran no instructions");
            let elapsed = warmup_elapsed + measured_elapsed;
            if elapsed < best {
                best = elapsed;
                best_warmup = warmup_elapsed;
                best_measured = measured_elapsed;
            }
        }
        let total = measured + warmup;
        let ips = total as f64 / best;
        println!(
            "  {:<24} {:>8.3} s ({:>6.3} s warm-up + {:>6.3} s measured)   {:>12.0} instr/s",
            design.label(),
            best,
            best_warmup,
            best_measured,
            ips
        );
        rows.push(DesignThroughput {
            design: design.label(),
            instructions: total,
            seconds: best,
            warmup_seconds: best_warmup,
            measured_seconds: best_measured,
            instr_per_sec: ips,
        });
    }

    let report = HotpathReport {
        measured_instructions: measured,
        warmup_instructions: warmup,
        workload: kind.name(),
        repeat,
        designs: rows,
    };
    let out = std::env::var("BANSHEE_HOTPATH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_hotpath.json");
    println!("wrote {out}");
}
