//! CLI entry point that regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p banshee_bench --bin experiments -- all
//! cargo run --release -p banshee_bench --bin experiments -- fig4 fig5 --quick
//! ```
//!
//! Flags: `--quick` (smaller runs), `--smoke` (tiny sanity runs),
//! `--help` (print usage). Output: tables on stdout + JSON under
//! `target/experiments/`.

use banshee_bench::experiments::{self, run_main_matrix, scale_from_flags, EXPERIMENT_NAMES};
use banshee_bench::runner::Runner;
use banshee_bench::table::Table;

fn print_all(tables: Vec<Table>) {
    for t in tables {
        t.print();
    }
}

fn print_usage() {
    println!("usage: experiments [EXPERIMENT ...] [--quick | --smoke]");
    println!();
    println!("Regenerates the paper's tables and figures. With no experiment");
    println!("names, runs everything (`all`).");
    println!();
    println!("experiments: {}", EXPERIMENT_NAMES.join(", "));
    println!();
    println!("flags:");
    println!("  --quick   smaller runs (faster, lower fidelity)");
    println!("  --smoke   tiny sanity runs (seconds, shapes only)");
    println!("  --help    print this message and exit");
    println!();
    println!("Tables are printed to stdout; raw numbers are written as JSON");
    println!("under target/experiments/.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if let Some(flag) = args
        .iter()
        .find(|a| a.starts_with('-') && *a != "--quick" && *a != "--smoke")
    {
        eprintln!("unknown flag '{flag}'; valid flags: --quick, --smoke, --help");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .collect();
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    for name in &selected {
        if !EXPERIMENT_NAMES.contains(&name.as_str()) {
            eprintln!(
                "unknown experiment '{name}'; valid names: {}",
                EXPERIMENT_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
    let all = selected.iter().any(|s| s == "all");
    let want = |name: &str| all || selected.iter().any(|s| s == name);

    let scale = scale_from_flags(quick, smoke);
    let runner = Runner::new(scale);
    eprintln!(
        "running {} at {:?} scale ({} instructions per run, {} cores)",
        selected.join(", "),
        scale,
        scale.instructions(),
        scale.cores()
    );

    // Figures 4/5/6 share one designs × workloads matrix.
    if want("fig4") || want("fig5") || want("fig6") {
        eprintln!("[matrix] running the Figure 4/5/6 design x workload matrix ...");
        let matrix = run_main_matrix(&runner);
        if want("fig4") {
            print_all(experiments::fig4::report(&matrix));
        }
        if want("fig5") {
            print_all(experiments::fig5::report(&matrix));
        }
        if want("fig6") {
            print_all(experiments::fig6::report(&matrix));
        }
    }
    if want("fig7") {
        eprintln!("[fig7] replacement-policy ablation ...");
        print_all(experiments::fig7::report(
            &runner,
            &experiments::full_suite(),
        ));
    }
    if want("fig8") {
        eprintln!("[fig8] latency/bandwidth sweep ...");
        print_all(experiments::fig8::report(
            &runner,
            &experiments::sweep_suite(),
        ));
    }
    if want("fig9") {
        eprintln!("[fig9] sampling-coefficient sweep ...");
        print_all(experiments::fig9::report(
            &runner,
            &experiments::sweep_suite(),
        ));
    }
    if want("table1") {
        eprintln!("[table1] per-access behaviour ...");
        print_all(experiments::table1::report());
    }
    if want("table5") {
        eprintln!("[table5] page-table update overhead ...");
        print_all(experiments::table5::report(
            &runner,
            &experiments::sweep_suite(),
        ));
    }
    if want("table6") {
        eprintln!("[table6] associativity sweep ...");
        print_all(experiments::table6::report(
            &runner,
            &experiments::sweep_suite(),
        ));
    }
    if want("large_pages") {
        eprintln!("[large_pages] 2 MiB pages on graph workloads ...");
        print_all(experiments::large_pages::report(
            &runner,
            &banshee_workloads::WorkloadKind::graph_suite(),
        ));
    }
    if want("batman") {
        eprintln!("[batman] bandwidth balancing ...");
        print_all(experiments::batman::report(
            &runner,
            &experiments::sweep_suite(),
        ));
    }
    eprintln!(
        "done; JSON written under {}",
        banshee_bench::table::output_dir().display()
    );
}
