//! CLI entry point that regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p banshee_bench --bin experiments -- all
//! cargo run --release -p banshee_bench --bin experiments -- fig4 fig5 --quick --jobs 8
//! ```
//!
//! Flags: `--quick` (smaller runs), `--smoke` (tiny sanity runs),
//! `--jobs N` (worker threads; default: available parallelism),
//! `--shards N` (timing-shard threads inside each simulation; results are
//! byte-identical at any N; also honoured as `BANSHEE_SHARDS=N`),
//! `--no-store` (disable the persistent result store), `--no-snapshot`
//! (disable warmed-state snapshot capture/resume; also honoured as the
//! `BANSHEE_NO_SNAPSHOT=1` environment variable), `--freq-backend B`
//! (frequency-tracking backend, `exact` or `cms:<width>x<depth>`; also
//! honoured as `BANSHEE_FREQ_BACKEND=B`), `--help`.
//! Output: tables on stdout + JSON under `target/experiments/`, cell cache
//! under `target/experiments/store/` (a re-run resumes from it), and a
//! `run_summary.json` with per-experiment wall-clock times and scale
//! metadata.

use banshee_bench::experiments::{self, run_main_matrix, scale_from_flags, EXPERIMENT_NAMES};
use banshee_bench::runner::{CellRecord, Runner};
use banshee_bench::table::{output_dir, write_json, Table};
use banshee_common::telemetry::{
    CellProfile, ProfileBreakdown, ProfileComponent, ProfileEntry, TelemetryConfig,
};
use banshee_exec::JobPool;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Wall-clock time of one experiment block within a run.
#[derive(Debug, Clone, Serialize)]
struct ExperimentTiming {
    name: String,
    seconds: f64,
}

/// Per-cell wall-clock row in `run_summary.json`.
#[derive(Debug, Clone, Serialize)]
struct CellTiming {
    workload: String,
    design: String,
    from_store: bool,
    resumed_warm: bool,
    seconds: f64,
    sim_seconds: f64,
    instructions: u64,
    instr_per_sec: f64,
}

impl From<&CellRecord> for CellTiming {
    fn from(r: &CellRecord) -> Self {
        CellTiming {
            workload: r.workload.clone(),
            design: r.design.clone(),
            from_store: r.from_store,
            resumed_warm: r.resumed_warm,
            seconds: r.seconds,
            sim_seconds: r.sim_seconds,
            instructions: r.instructions,
            instr_per_sec: r.instr_per_sec,
        }
    }
}

/// Metadata written to `target/experiments/run_summary.json` so per-PR
/// trajectories (runtimes, cache behaviour) can be tracked.
#[derive(Debug, Clone, Serialize)]
struct RunSummary {
    scale: String,
    instructions_per_run: u64,
    cores: usize,
    jobs: usize,
    shards_requested: usize,
    shards_effective: usize,
    store_enabled: bool,
    snapshots_enabled: bool,
    telemetry_enabled: bool,
    started_unix_secs: u64,
    total_seconds: f64,
    cells_simulated: usize,
    cells_from_store: usize,
    cells_resumed_warm: usize,
    cells_cold: usize,
    simulation_seconds: f64,
    sim_only_seconds: f64,
    experiments: Vec<ExperimentTiming>,
    cells: Vec<CellTiming>,
    self_profile: Option<ProfileBreakdown>,
}

/// Sum the per-cell self-profiles into one run-wide breakdown (None when
/// no cell deposited a profile, i.e. telemetry was off).
fn aggregate_profile(cells: &[CellProfile]) -> Option<ProfileBreakdown> {
    if cells.is_empty() {
        return None;
    }
    let mut seconds = vec![0.0f64; ProfileComponent::ALL.len()];
    let mut calls = vec![0u64; ProfileComponent::ALL.len()];
    for cell in cells {
        for entry in &cell.profile.entries {
            if let Some(i) = ProfileComponent::ALL
                .iter()
                .position(|c| c.label() == entry.component)
            {
                seconds[i] += entry.seconds;
                calls[i] += entry.calls;
            }
        }
    }
    let total: f64 = seconds.iter().sum();
    let entries = ProfileComponent::ALL
        .iter()
        .enumerate()
        .filter(|&(i, _)| calls[i] > 0)
        .map(|(i, c)| ProfileEntry {
            component: c.label().to_string(),
            seconds: seconds[i],
            share: if total > 0.0 { seconds[i] / total } else { 0.0 },
            calls: calls[i],
        })
        .collect();
    Some(ProfileBreakdown {
        entries,
        total_seconds: total,
    })
}

fn print_all(tables: Vec<Table>) {
    for t in tables {
        t.print();
    }
}

fn print_usage() {
    println!(
        "usage: experiments [EXPERIMENT ...] [--quick | --smoke] [--jobs N] [--shards N] \
         [--no-store] [--no-snapshot] [--telemetry DIR] [--telemetry-interval N] \
         [--freq-backend B]"
    );
    println!(
        "       experiments scenario FILE... [--quick | --smoke] [--jobs N] [--shards N] \
         [--no-store] [--no-snapshot] [--telemetry DIR] [--telemetry-interval N] \
         [--freq-backend B]"
    );
    println!();
    println!("Regenerates the paper's tables and figures. With no experiment");
    println!("names, runs everything (`all`).");
    println!();
    println!("experiments: {}", EXPERIMENT_NAMES.join(", "));
    println!();
    println!("subcommands:");
    println!("  scenario FILE...  run data-driven scenario files (JSON workload +");
    println!("                    sweep descriptions; see examples/scenarios/ and");
    println!("                    the scenario section of EXPERIMENTS.md). Output");
    println!("                    goes to target/experiments/scenario_<name>.json");
    println!();
    println!("flags:");
    println!("  --quick     smaller runs (faster, lower fidelity)");
    println!("  --smoke     tiny sanity runs (seconds, shapes only)");
    println!("  --jobs N    run N simulations in parallel (default: available");
    println!("              parallelism; results are identical at any N)");
    println!("  --shards N  split each simulation's DRAM-channel timing across");
    println!("              N threads (default 1 = sequential; results are");
    println!("              byte-identical at any N). Clamped, with a notice, so");
    println!("              jobs x shards never oversubscribes the host.");
    println!("              (BANSHEE_SHARDS=N does the same)");
    println!("  --no-store  disable the persistent result store (by default,");
    println!("              finished cells are cached under");
    println!("              target/experiments/store/ and re-runs resume)");
    println!("  --no-snapshot  disable warmed-state snapshots (by default, each");
    println!("              cell's post-warm-up machine state is cached beside the");
    println!("              results and runs differing only in measured length");
    println!("              resume from it; BANSHEE_NO_SNAPSHOT=1 does the same)");
    println!("  --telemetry DIR  record time-resolved telemetry for every");
    println!("              simulated cell: epoch-sampled time series (JSON + CSV),");
    println!("              a Chrome-traceable event trace, and a self-profile in");
    println!("              run_summary.json. Files land under DIR. Store hits are");
    println!("              re-simulated so each cell emits its series; results are");
    println!("              byte-identical with telemetry on or off.");
    println!("              (BANSHEE_TELEMETRY=DIR does the same)");
    println!("  --telemetry-interval N  sample every N instructions (default");
    println!("              100000; BANSHEE_TELEMETRY_INTERVAL=N does the same)");
    println!("  --freq-backend B  track page/line access frequencies with backend");
    println!("              B: `exact` (default; per-page hash maps) or");
    println!("              `cms:<width>x<depth>` (bounded-memory CountMinSketch,");
    println!("              e.g. cms:4096x4). Non-default backends re-key the");
    println!("              result store. (BANSHEE_FREQ_BACKEND=B does the same)");
    println!("  --help      print this message and exit");
    println!();
    println!("Tables are printed to stdout; raw numbers are written as JSON");
    println!("under target/experiments/, and run_summary.json records scale,");
    println!("wall-clock, cache and per-cell timing metadata for the run.");
}

/// Parsed command line (plus the environment variables that alias flags).
#[derive(Debug, Clone, Default)]
struct CliArgs {
    selected: Vec<String>,
    quick: bool,
    smoke: bool,
    jobs: usize,
    shards: usize,
    no_store: bool,
    no_snapshot: bool,
    telemetry_dir: Option<PathBuf>,
    telemetry_interval: Option<u64>,
    freq_backend: Option<banshee_common::FrequencyBackendKind>,
}

fn parse_freq_backend(
    value: &str,
    source: &str,
) -> Result<banshee_common::FrequencyBackendKind, String> {
    banshee_common::FrequencyBackendKind::parse(value)
        .map_err(|e| format!("invalid {source} value '{value}': {e}"))
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut cli = CliArgs {
        shards: 1,
        no_snapshot: std::env::var("BANSHEE_NO_SNAPSHOT").is_ok_and(|v| v == "1"),
        telemetry_dir: std::env::var("BANSHEE_TELEMETRY")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from),
        ..CliArgs::default()
    };
    if let Ok(value) = std::env::var("BANSHEE_SHARDS") {
        cli.shards = value
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid BANSHEE_SHARDS value '{value}'"))?;
    }
    if let Ok(value) = std::env::var("BANSHEE_TELEMETRY_INTERVAL") {
        cli.telemetry_interval = Some(
            value
                .parse()
                .map_err(|_| format!("invalid BANSHEE_TELEMETRY_INTERVAL value '{value}'"))?,
        );
    }
    if let Ok(value) = std::env::var("BANSHEE_FREQ_BACKEND") {
        cli.freq_backend = Some(parse_freq_backend(&value, "BANSHEE_FREQ_BACKEND")?);
    }
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--quick" {
            cli.quick = true;
        } else if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--no-store" {
            cli.no_store = true;
        } else if arg == "--no-snapshot" {
            cli.no_snapshot = true;
        } else if arg == "--jobs" {
            i += 1;
            let value = args
                .get(i)
                .ok_or_else(|| "--jobs requires a value".to_string())?;
            cli.jobs = value
                .parse()
                .map_err(|_| format!("invalid --jobs value '{value}'"))?;
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            cli.jobs = value
                .parse()
                .map_err(|_| format!("invalid --jobs value '{value}'"))?;
        } else if arg == "--shards" {
            i += 1;
            let value = args
                .get(i)
                .ok_or_else(|| "--shards requires a value".to_string())?;
            cli.shards = value
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!("invalid --shards value '{value}' (need an integer >= 1)")
                })?;
        } else if let Some(value) = arg.strip_prefix("--shards=") {
            cli.shards = value
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!("invalid --shards value '{value}' (need an integer >= 1)")
                })?;
        } else if arg == "--telemetry" {
            i += 1;
            let value = args
                .get(i)
                .ok_or_else(|| "--telemetry requires a directory".to_string())?;
            cli.telemetry_dir = Some(PathBuf::from(value));
        } else if let Some(value) = arg.strip_prefix("--telemetry=") {
            cli.telemetry_dir = Some(PathBuf::from(value));
        } else if arg == "--telemetry-interval" {
            i += 1;
            let value = args
                .get(i)
                .ok_or_else(|| "--telemetry-interval requires a value".to_string())?;
            cli.telemetry_interval = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --telemetry-interval value '{value}'"))?,
            );
        } else if let Some(value) = arg.strip_prefix("--telemetry-interval=") {
            cli.telemetry_interval = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --telemetry-interval value '{value}'"))?,
            );
        } else if arg == "--freq-backend" {
            i += 1;
            let value = args
                .get(i)
                .ok_or_else(|| "--freq-backend requires a value".to_string())?;
            cli.freq_backend = Some(parse_freq_backend(value, "--freq-backend")?);
        } else if let Some(value) = arg.strip_prefix("--freq-backend=") {
            cli.freq_backend = Some(parse_freq_backend(value, "--freq-backend")?);
        } else if arg.starts_with('-') {
            return Err(format!(
                "unknown flag '{arg}'; valid flags: --quick, --smoke, --jobs N, --shards N, \
                 --no-store, --no-snapshot, --telemetry DIR, --telemetry-interval N, \
                 --freq-backend B, --help"
            ));
        } else {
            cli.selected.push(arg.clone());
        }
        i += 1;
    }
    if cli.telemetry_interval == Some(0) {
        return Err("--telemetry-interval must be at least 1".to_string());
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let cli = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let CliArgs {
        mut selected,
        quick,
        smoke,
        jobs,
        shards,
        no_store,
        no_snapshot,
        telemetry_dir,
        telemetry_interval,
        freq_backend,
    } = cli;
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    // `scenario FILE...` consumes every following positional argument.
    let scenario_files: Vec<String> = if selected[0] == "scenario" {
        let files = selected.split_off(1);
        if files.is_empty() {
            eprintln!(
                "`scenario` requires at least one scenario file \
                 (see examples/scenarios/)"
            );
            std::process::exit(2);
        }
        files
    } else {
        for name in &selected {
            if !EXPERIMENT_NAMES.contains(&name.as_str()) {
                eprintln!(
                    "unknown experiment '{name}'; valid names: {} \
                     (or `scenario FILE...` for data-driven scenario files)",
                    EXPERIMENT_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
        Vec::new()
    };
    let scenario_mode = !scenario_files.is_empty();
    let all = !scenario_mode && selected.iter().any(|s| s == "all");
    let want = |name: &str| all || selected.iter().any(|s| s == name);

    let scale = scale_from_flags(quick, smoke);
    let effective_jobs = if jobs == 0 {
        JobPool::available_workers()
    } else {
        jobs
    };
    let mut runner = Runner::new(scale)
        .with_jobs(jobs)
        .with_shards(shards)
        .with_progress(true)
        .with_snapshots(!no_snapshot);
    if let Some(backend) = freq_backend {
        runner = runner.with_frequency_backend(backend);
        eprintln!("frequency backend: {}", backend.label());
    }
    if !no_store {
        runner = runner.with_store(output_dir().join("store"));
    }
    if let Some(dir) = &telemetry_dir {
        let mut tel_config = TelemetryConfig::default();
        if let Some(interval) = telemetry_interval {
            tel_config.interval_instructions = interval;
        }
        runner = runner.with_telemetry(dir, tel_config);
        eprintln!(
            "telemetry on: sampling every {} instructions, files under {}",
            tel_config.interval_instructions,
            dir.display()
        );
    }
    eprintln!(
        "running {} at {:?} scale ({} instructions per run, {} cores) with {} worker{}{}{}",
        if scenario_mode {
            format!("scenario {}", scenario_files.join(", "))
        } else {
            selected.join(", ")
        },
        scale,
        scale.instructions(),
        scale.cores(),
        effective_jobs,
        if effective_jobs == 1 { "" } else { "s" },
        if shards > 1 {
            format!(", {shards} timing shards per cell")
        } else {
            String::new()
        },
        if no_store {
            ", result store disabled".to_string()
        } else {
            format!(", result store at {}", output_dir().join("store").display())
        }
    );

    let started = Instant::now();
    let started_unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut timings: Vec<ExperimentTiming> = Vec::new();
    let timed = |timings: &mut Vec<ExperimentTiming>, name: &str, run: &mut dyn FnMut()| {
        let t0 = Instant::now();
        run();
        let seconds = t0.elapsed().as_secs_f64();
        eprintln!("[{name}] finished in {seconds:.2}s");
        timings.push(ExperimentTiming {
            name: name.to_string(),
            seconds,
        });
    };

    if scenario_mode {
        // Parse and validate every file (including design names) before
        // running any: an error in the third file should not cost two
        // long runs first.
        let mut specs: Vec<banshee_workloads::ScenarioSpec> = Vec::new();
        for file in &scenario_files {
            match banshee_workloads::ScenarioSpec::from_file(file) {
                Ok(spec) => {
                    if let Err(message) = experiments::scenario::resolve_designs(&spec) {
                        eprintln!("{message}");
                        std::process::exit(2);
                    }
                    if let Some(previous) = specs.iter().position(|s| s.name == spec.name) {
                        eprintln!(
                            "{file}: scenario name `{}` is already used by {}; names must \
                             be unique across one invocation (they name the output JSON)",
                            spec.name, scenario_files[previous]
                        );
                        std::process::exit(2);
                    }
                    specs.push(spec);
                }
                Err(error) => {
                    eprintln!("{error}");
                    std::process::exit(2);
                }
            }
        }
        for spec in &specs {
            eprintln!(
                "[scenario] {} ({} workloads x {} designs, {} cells/design) ...",
                spec.name,
                spec.workloads.len(),
                if spec.designs.is_empty() {
                    "default".to_string()
                } else {
                    spec.designs.len().to_string()
                },
                spec.cells_per_design(),
            );
            let mut failure = None;
            timed(
                &mut timings,
                &format!("scenario_{}", spec.name),
                &mut || match experiments::scenario::run_and_report(&runner, spec) {
                    Ok(tables) => print_all(tables),
                    Err(message) => failure = Some(message),
                },
            );
            if let Some(message) = failure {
                eprintln!("scenario `{}` failed: {message}", spec.name);
                std::process::exit(1);
            }
        }
    }

    // Figures 4/5/6 share one designs × workloads matrix.
    if want("fig4") || want("fig5") || want("fig6") {
        eprintln!("[matrix] running the Figure 4/5/6 design x workload matrix ...");
        timed(&mut timings, "fig4_5_6", &mut || {
            let matrix = run_main_matrix(&runner);
            if want("fig4") {
                print_all(experiments::fig4::report(&matrix));
            }
            if want("fig5") {
                print_all(experiments::fig5::report(&matrix));
            }
            if want("fig6") {
                print_all(experiments::fig6::report(&matrix));
            }
        });
    }
    if want("fig7") {
        eprintln!("[fig7] replacement-policy ablation ...");
        timed(&mut timings, "fig7", &mut || {
            print_all(experiments::fig7::report(
                &runner,
                &experiments::full_suite(),
            ));
        });
    }
    if want("fig8") {
        eprintln!("[fig8] latency/bandwidth sweep ...");
        timed(&mut timings, "fig8", &mut || {
            print_all(experiments::fig8::report(
                &runner,
                &experiments::sweep_suite(),
            ));
        });
    }
    if want("fig9") {
        eprintln!("[fig9] sampling-coefficient sweep ...");
        timed(&mut timings, "fig9", &mut || {
            print_all(experiments::fig9::report(
                &runner,
                &experiments::sweep_suite(),
            ));
        });
    }
    if want("table1") {
        eprintln!("[table1] per-access behaviour ...");
        timed(&mut timings, "table1", &mut || {
            print_all(experiments::table1::report());
        });
    }
    if want("table5") {
        eprintln!("[table5] page-table update overhead ...");
        timed(&mut timings, "table5", &mut || {
            print_all(experiments::table5::report(
                &runner,
                &experiments::sweep_suite(),
            ));
        });
    }
    if want("table6") {
        eprintln!("[table6] associativity sweep ...");
        timed(&mut timings, "table6", &mut || {
            print_all(experiments::table6::report(
                &runner,
                &experiments::sweep_suite(),
            ));
        });
    }
    if want("large_pages") {
        eprintln!("[large_pages] 2 MiB pages on graph workloads ...");
        timed(&mut timings, "large_pages", &mut || {
            print_all(experiments::large_pages::report(
                &runner,
                &banshee_workloads::WorkloadKind::graph_suite(),
            ));
        });
    }
    if want("batman") {
        eprintln!("[batman] bandwidth balancing ...");
        timed(&mut timings, "batman", &mut || {
            print_all(experiments::batman::report(
                &runner,
                &experiments::sweep_suite(),
            ));
        });
    }
    if want("sketch_fidelity") {
        eprintln!("[sketch_fidelity] CountMinSketch vs exact frequency tracking ...");
        timed(&mut timings, "sketch_fidelity", &mut || {
            print_all(experiments::sketch_fidelity::report(
                &runner,
                &experiments::sweep_suite(),
            ));
        });
    }

    let summary = RunSummary {
        scale: scale.name().to_string(),
        instructions_per_run: scale.instructions(),
        cores: scale.cores(),
        jobs: effective_jobs,
        shards_requested: shards,
        shards_effective: match runner.counters.effective_shards() {
            0 => shards, // no cell simulated; the request was never clamped
            effective => effective,
        },
        store_enabled: !no_store,
        snapshots_enabled: !no_snapshot && !no_store,
        telemetry_enabled: telemetry_dir.is_some(),
        started_unix_secs,
        total_seconds: started.elapsed().as_secs_f64(),
        cells_simulated: runner.counters.simulated(),
        cells_from_store: runner.counters.from_store(),
        cells_resumed_warm: runner.counters.resumed_warm(),
        cells_cold: runner.counters.cold(),
        simulation_seconds: runner.counters.simulated_time().as_secs_f64(),
        sim_only_seconds: runner.counters.sim_only_time().as_secs_f64(),
        experiments: timings,
        cells: runner
            .counters
            .cell_records()
            .iter()
            .map(CellTiming::from)
            .collect(),
        self_profile: aggregate_profile(&runner.counters.cell_profiles()),
    };
    if let Err(err) = write_json("run_summary", &summary) {
        eprintln!("warning: failed to write run_summary.json ({err})");
    }
    eprintln!(
        "done in {:.2}s ({} cells simulated, {} warm-resumed, {} from store); JSON written \
         under {}",
        summary.total_seconds,
        summary.cells_simulated,
        summary.cells_resumed_warm,
        summary.cells_from_store,
        output_dir().display()
    );
}
