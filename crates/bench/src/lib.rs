//! The experiment harness: one module per table/figure of the paper's
//! evaluation (Section 5), plus shared runners and table/JSON output.
//!
//! Every experiment follows the same shape:
//!
//! 1. build a set of [`banshee_sim::SimConfig`]s (designs × parameters),
//! 2. run them over the workload suite with [`runner`],
//! 3. print the same rows/series the paper reports (speedup normalized to
//!    NoCache, bytes per instruction by traffic class, miss rates, ...) and
//! 4. write the raw numbers as JSON under `target/experiments/`.
//!
//! Absolute numbers will not match the paper (the substrate is a scaled
//! simulator, not the authors' testbed); the quantities to compare are the
//! *shapes*: which design wins, by roughly what factor, and where the
//! crossovers are. `EXPERIMENTS.md` records that comparison.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p banshee_bench --bin experiments -- all
//! ```
//!
//! or a single experiment with e.g. `-- fig4`. Add `--quick` for a faster,
//! lower-fidelity pass, `--jobs N` to fan cells across worker threads
//! (results are identical at any `N`), and `--no-store` to disable the
//! persistent result store that lets re-runs and interrupted sweeps resume.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod runner;
pub mod table;

pub use runner::{CellReport, ExperimentScale, MatrixResults, Runner, RunnerCounters};
pub use table::Table;
