//! Shared experiment runner: the workload suite × design matrix.

use banshee_common::MemSize;
use banshee_dcache::DramCacheDesign;
use banshee_sim::{run_one, SimConfig, SimResult};
use banshee_workloads::{Workload, WorkloadKind};
use std::collections::HashMap;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// A few million instructions per run — minutes for the full matrix.
    Quick,
    /// The default scaled runs used for EXPERIMENTS.md.
    Standard,
    /// A smoke-test scale used by unit/integration tests and Criterion.
    Smoke,
}

impl ExperimentScale {
    /// DRAM-cache capacity for this scale.
    pub fn dram_cache_capacity(&self) -> MemSize {
        match self {
            ExperimentScale::Smoke => MemSize::mib(8),
            ExperimentScale::Quick => MemSize::mib(16),
            ExperimentScale::Standard => MemSize::mib(32),
        }
    }

    /// Total data footprint of a workload relative to the cache (the paper's
    /// interesting regime is footprint ≫ cache).
    pub fn footprint_factor(&self) -> u64 {
        4
    }

    /// Measured instructions per simulation (after warm-up).
    pub fn instructions(&self) -> u64 {
        match self {
            ExperimentScale::Smoke => 300_000,
            ExperimentScale::Quick => 2_000_000,
            ExperimentScale::Standard => 8_000_000,
        }
    }

    /// Warm-up instructions per simulation (excluded from the statistics).
    pub fn warmup_instructions(&self) -> u64 {
        match self {
            ExperimentScale::Smoke => 200_000,
            ExperimentScale::Quick => 4_000_000,
            ExperimentScale::Standard => 8_000_000,
        }
    }

    /// Number of cores to simulate.
    pub fn cores(&self) -> usize {
        match self {
            ExperimentScale::Smoke => 4,
            _ => 16,
        }
    }
}

/// Builds configurations and runs (workload, design) pairs.
#[derive(Debug, Clone)]
pub struct Runner {
    /// The scale of each simulation.
    pub scale: ExperimentScale,
    /// RNG seed shared by every run (kept fixed so designs see identical
    /// traces).
    pub seed: u64,
}

impl Runner {
    /// A runner at the given scale.
    pub fn new(scale: ExperimentScale) -> Self {
        Runner { scale, seed: 42 }
    }

    /// The base configuration for a design at this scale.
    pub fn config(&self, design: DramCacheDesign) -> SimConfig {
        let mut cfg = SimConfig::scaled(design, self.scale.dram_cache_capacity());
        cfg.cores = self.scale.cores();
        cfg.hierarchy = banshee_memhier::HierarchyConfig {
            llc_size: MemSize::bytes(
                (self.scale.dram_cache_capacity().as_bytes() / 32).max(256 * 1024),
            ),
            ..banshee_memhier::HierarchyConfig::paper_default(self.scale.cores())
        };
        cfg.total_instructions = self.scale.instructions();
        cfg.warmup_instructions = self.scale.warmup_instructions();
        cfg.seed = self.seed;
        cfg
    }

    /// The workload object for a suite entry at this scale.
    pub fn workload(&self, kind: WorkloadKind) -> Workload {
        let footprint = self.scale.dram_cache_capacity().as_bytes() * self.scale.footprint_factor();
        Workload::new(kind, footprint, self.seed)
    }

    /// Run one (design, workload) pair with the default configuration.
    pub fn run(&self, design: DramCacheDesign, kind: WorkloadKind) -> SimResult {
        self.run_with(self.config(design), kind)
    }

    /// Run one workload under an explicit configuration (for sweeps).
    pub fn run_with(&self, config: SimConfig, kind: WorkloadKind) -> SimResult {
        run_one(config, &self.workload(kind))
    }

    /// Run the full designs × workloads matrix.
    pub fn run_matrix(
        &self,
        designs: &[DramCacheDesign],
        workloads: &[WorkloadKind],
    ) -> MatrixResults {
        let mut results = MatrixResults::default();
        for &kind in workloads {
            for &design in designs {
                let r = self.run(design, kind);
                results.insert(kind.name(), design.label(), r);
            }
        }
        results
    }
}

/// Results of a designs × workloads matrix, indexed by (workload, design)
/// labels.
#[derive(Debug, Clone, Default)]
pub struct MatrixResults {
    results: HashMap<(String, String), SimResult>,
    workload_order: Vec<String>,
    design_order: Vec<String>,
}

impl MatrixResults {
    /// Store one result.
    pub fn insert(&mut self, workload: String, design: String, result: SimResult) {
        if !self.workload_order.contains(&workload) {
            self.workload_order.push(workload.clone());
        }
        if !self.design_order.contains(&design) {
            self.design_order.push(design.clone());
        }
        self.results.insert((workload, design), result);
    }

    /// Look up one result.
    pub fn get(&self, workload: &str, design: &str) -> Option<&SimResult> {
        self.results
            .get(&(workload.to_string(), design.to_string()))
    }

    /// Workload labels in insertion order.
    pub fn workloads(&self) -> &[String] {
        &self.workload_order
    }

    /// Design labels in insertion order.
    pub fn designs(&self) -> &[String] {
        &self.design_order
    }

    /// Geometric mean of a per-workload metric over all workloads, for one
    /// design. Workloads where the metric is non-positive are skipped.
    pub fn geomean<F>(&self, design: &str, metric: F) -> f64
    where
        F: Fn(&SimResult) -> f64,
    {
        let values: Vec<f64> = self
            .workload_order
            .iter()
            .filter_map(|w| self.get(w, design))
            .map(&metric)
            .filter(|v| *v > 0.0)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
        }
    }

    /// Arithmetic mean of a per-workload metric for one design.
    pub fn mean<F>(&self, design: &str, metric: F) -> f64
    where
        F: Fn(&SimResult) -> f64,
    {
        let values: Vec<f64> = self
            .workload_order
            .iter()
            .filter_map(|w| self.get(w, design))
            .map(&metric)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Every stored result (for JSON export).
    pub fn all(&self) -> Vec<&SimResult> {
        self.workload_order
            .iter()
            .flat_map(|w| self.design_order.iter().filter_map(move |d| self.get(w, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_workloads::SpecProgram;

    #[test]
    fn smoke_matrix_runs_and_indexes() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let designs = [DramCacheDesign::NoCache, DramCacheDesign::Banshee];
        let workloads = [WorkloadKind::Spec(SpecProgram::Gcc)];
        let m = runner.run_matrix(&designs, &workloads);
        assert_eq!(m.workloads().len(), 1);
        assert_eq!(m.designs().len(), 2);
        let no = m.get("gcc", "NoCache").unwrap();
        let ban = m.get("gcc", "Banshee").unwrap();
        assert!(no.instructions > 0 && ban.instructions > 0);
        assert!(m.geomean("Banshee", |r| r.ipc()) > 0.0);
        assert!(m.mean("NoCache", |r| r.ipc()) > 0.0);
        assert_eq!(m.all().len(), 2);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentScale::Smoke.instructions() < ExperimentScale::Quick.instructions());
        assert!(ExperimentScale::Quick.instructions() < ExperimentScale::Standard.instructions());
        assert!(
            ExperimentScale::Quick.dram_cache_capacity()
                <= ExperimentScale::Standard.dram_cache_capacity()
        );
    }

    #[test]
    fn config_respects_scale() {
        let r = Runner::new(ExperimentScale::Smoke);
        let cfg = r.config(DramCacheDesign::Banshee);
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.total_instructions, 300_000);
        assert_eq!(cfg.dcache.capacity, MemSize::mib(8));
    }
}
