//! Shared experiment runner: the workload suite × design matrix, executed
//! through the `banshee_exec` engine.
//!
//! Every (config, workload) cell is an independent, deterministic
//! simulation, so the runner fans batches across a [`JobPool`] and caches
//! each cell's [`SimResult`] in a persistent [`ResultStore`] keyed by the
//! full configuration. Parallel runs produce results identical
//! cell-for-cell to sequential runs (the pool preserves input order), and
//! interrupted sweeps resume by skipping cells the store already holds.

use banshee_common::telemetry::{
    slug, CellProfile, ProfileCollector, TelemetryConfig, TelemetrySink,
};
use banshee_common::MemSize;
use banshee_dcache::DramCacheDesign;
use banshee_exec::{JobPool, ResultStore};
use banshee_sim::{SimConfig, SimResult, System};
use banshee_workloads::{TraceFactory, Workload, WorkloadKind};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// A few million instructions per run — minutes for the full matrix.
    Quick,
    /// The default scaled runs used for EXPERIMENTS.md.
    Standard,
    /// A smoke-test scale used by unit/integration tests and Criterion.
    Smoke,
}

impl ExperimentScale {
    /// DRAM-cache capacity for this scale.
    pub fn dram_cache_capacity(&self) -> MemSize {
        match self {
            ExperimentScale::Smoke => MemSize::mib(8),
            ExperimentScale::Quick => MemSize::mib(16),
            ExperimentScale::Standard => MemSize::mib(32),
        }
    }

    /// Total data footprint of a workload relative to the cache (the paper's
    /// interesting regime is footprint ≫ cache).
    pub fn footprint_factor(&self) -> u64 {
        4
    }

    /// Measured instructions per simulation (after warm-up).
    pub fn instructions(&self) -> u64 {
        match self {
            ExperimentScale::Smoke => 300_000,
            ExperimentScale::Quick => 2_000_000,
            ExperimentScale::Standard => 8_000_000,
        }
    }

    /// Warm-up instructions per simulation (excluded from the statistics).
    pub fn warmup_instructions(&self) -> u64 {
        match self {
            ExperimentScale::Smoke => 200_000,
            ExperimentScale::Quick => 4_000_000,
            ExperimentScale::Standard => 8_000_000,
        }
    }

    /// Number of cores to simulate.
    pub fn cores(&self) -> usize {
        match self {
            ExperimentScale::Smoke => 4,
            _ => 16,
        }
    }

    /// Lower-case label used in JSON metadata ("smoke", "quick",
    /// "standard").
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentScale::Smoke => "smoke",
            ExperimentScale::Quick => "quick",
            ExperimentScale::Standard => "standard",
        }
    }
}

/// How one batched cell was satisfied (observed via
/// [`Runner::run_batch_observed`]).
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Index of the cell in the submitted batch.
    pub index: usize,
    /// Workload label.
    pub workload: String,
    /// Design label.
    pub design: String,
    /// True if the result came from the persistent store rather than a
    /// fresh simulation.
    pub from_store: bool,
    /// True if the simulation resumed from a warmed-state snapshot instead
    /// of running warm-up cold (always false for store hits).
    pub resumed_warm: bool,
    /// True if the cell's simulation panicked instead of producing a
    /// result (the whole batch fails once every cell has finished).
    pub panicked: bool,
    /// Wall-clock time the cell took end to end, including snapshot
    /// get/resume/put I/O (zero for store hits).
    pub duration: Duration,
    /// Wall-clock time spent purely simulating (warm-up plus measured
    /// phase), excluding snapshot I/O and image encode/decode. This is the
    /// denominator for honest throughput comparisons — e.g. sharded vs.
    /// sequential — where snapshot traffic would otherwise dilute the
    /// speedup. Zero for store hits.
    pub sim_duration: Duration,
    /// Instructions simulated for this cell in this process: warm-up plus
    /// measured phase for cold runs, the measured phase alone for
    /// snapshot-resumed runs, and the stored result's measured instructions
    /// for store hits.
    pub instructions: u64,
}

impl CellReport {
    /// Simulated instructions per wall-clock second of *simulation* time
    /// (snapshot-resume I/O excluded; zero for store hits).
    pub fn instr_per_sec(&self) -> f64 {
        let secs = self.sim_duration.as_secs_f64();
        if secs > 0.0 && !self.from_store {
            self.instructions as f64 / secs
        } else {
            0.0
        }
    }
}

/// A compact per-cell wall-clock record, kept by [`RunnerCounters`] so the
/// `experiments` binary can report per-cell timing in `run_summary.json`.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Workload label.
    pub workload: String,
    /// Design label.
    pub design: String,
    /// True if the result came from the persistent store.
    pub from_store: bool,
    /// True if the run resumed from a warmed snapshot.
    pub resumed_warm: bool,
    /// Wall-clock seconds end to end, including snapshot I/O (zero for
    /// store hits).
    pub seconds: f64,
    /// Wall-clock seconds spent purely simulating (see
    /// [`CellReport::sim_duration`]; zero for store hits).
    pub sim_seconds: f64,
    /// Instructions simulated in this process (see
    /// [`CellReport::instructions`]).
    pub instructions: u64,
    /// Simulated instructions per second of simulation time
    /// (snapshot-resume I/O excluded; zero for store hits).
    pub instr_per_sec: f64,
}

/// A fully-prepared execution cell: configuration, workload factory,
/// display labels and store key material. Built-in experiment cells come
/// from [`Runner::prepare`]; scenario cells are prepared by the scenario
/// module, which folds the scenario's own content into the key material.
#[derive(Clone)]
pub struct PreparedCell {
    /// Workload display label.
    pub workload_label: String,
    /// Design display label.
    pub design_label: String,
    /// A canonical description of everything that affects this cell's
    /// result (keys the persistent store).
    pub key_material: String,
    /// The canonical workload identity (kind, footprint, trace seed —
    /// everything shaping the trace stream, independent of the simulation
    /// config). Combined with the config's warm-up key material it keys the
    /// store's warmed-snapshot namespace, so cells that differ only in
    /// post-warm-up knobs share a warmed image.
    pub workload_ident: String,
    /// The simulation configuration.
    pub config: SimConfig,
    /// Builds the per-core traces.
    pub factory: Arc<dyn TraceFactory>,
}

/// Tallies of how a runner's cells were satisfied, shared across clones
/// (the `experiments` binary reports them in `run_summary.json`).
#[derive(Debug, Clone, Default)]
pub struct RunnerCounters {
    simulated: Arc<AtomicUsize>,
    from_store: Arc<AtomicUsize>,
    resumed_warm: Arc<AtomicUsize>,
    simulated_micros: Arc<AtomicU64>,
    sim_only_micros: Arc<AtomicU64>,
    effective_shards: Arc<AtomicUsize>,
    cells: Arc<Mutex<Vec<CellRecord>>>,
    profiles: ProfileCollector,
}

impl RunnerCounters {
    /// Cells computed by running a simulation.
    pub fn simulated(&self) -> usize {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Cells satisfied from the persistent result store.
    pub fn from_store(&self) -> usize {
        self.from_store.load(Ordering::Relaxed)
    }

    /// Simulated cells that resumed from a warmed-state snapshot (skipping
    /// warm-up). The remainder — [`RunnerCounters::cold`] — ran warm-up
    /// from scratch.
    pub fn resumed_warm(&self) -> usize {
        self.resumed_warm.load(Ordering::Relaxed)
    }

    /// Simulated cells that ran warm-up cold (no usable warmed image).
    pub fn cold(&self) -> usize {
        self.simulated().saturating_sub(self.resumed_warm())
    }

    /// Total wall-clock time spent inside simulations, summed over cells
    /// (under parallel execution this exceeds elapsed time). Includes
    /// snapshot get/resume/put I/O; see [`RunnerCounters::sim_only_time`].
    pub fn simulated_time(&self) -> Duration {
        Duration::from_micros(self.simulated_micros.load(Ordering::Relaxed))
    }

    /// Total wall-clock time spent purely simulating, summed over cells
    /// (snapshot I/O excluded; see [`CellReport::sim_duration`]).
    pub fn sim_only_time(&self) -> Duration {
        Duration::from_micros(self.sim_only_micros.load(Ordering::Relaxed))
    }

    /// The per-cell shard count the most recent batch actually used, after
    /// the oversubscription clamp (zero before any batch simulates).
    pub fn effective_shards(&self) -> usize {
        self.effective_shards.load(Ordering::Relaxed)
    }

    /// Per-cell wall-clock records, in completion order (store hits first).
    /// Panicked cells are not recorded.
    pub fn cell_records(&self) -> Vec<CellRecord> {
        self.cells.lock().map(|c| c.clone()).unwrap_or_default()
    }

    /// The shared collector simulated cells deposit their telemetry
    /// self-profiles into (populated only when telemetry is enabled).
    pub fn profile_collector(&self) -> ProfileCollector {
        self.profiles.clone()
    }

    /// Self-profiles collected so far (one per simulated cell, telemetry
    /// runs only).
    pub fn cell_profiles(&self) -> Vec<CellProfile> {
        self.profiles.lock().map(|p| p.clone()).unwrap_or_default()
    }

    fn record(&self, report: &CellReport) {
        if report.from_store {
            self.from_store.fetch_add(1, Ordering::Relaxed);
        } else if !report.panicked {
            self.simulated.fetch_add(1, Ordering::Relaxed);
            if report.resumed_warm {
                self.resumed_warm.fetch_add(1, Ordering::Relaxed);
            }
            self.simulated_micros
                .fetch_add(report.duration.as_micros() as u64, Ordering::Relaxed);
            self.sim_only_micros
                .fetch_add(report.sim_duration.as_micros() as u64, Ordering::Relaxed);
        }
        if !report.panicked {
            if let Ok(mut cells) = self.cells.lock() {
                cells.push(CellRecord {
                    workload: report.workload.clone(),
                    design: report.design.clone(),
                    from_store: report.from_store,
                    resumed_warm: report.resumed_warm,
                    seconds: report.duration.as_secs_f64(),
                    sim_seconds: report.sim_duration.as_secs_f64(),
                    instructions: report.instructions,
                    instr_per_sec: report.instr_per_sec(),
                });
            }
        }
    }
}

/// Telemetry settings for a runner: where the per-cell files go and how the
/// recorder samples.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Output directory for `telemetry_<cell>.{json,csv,trace.json}` files.
    pub dir: PathBuf,
    /// Recorder settings (sampling interval and buffer capacities).
    pub config: TelemetryConfig,
}

/// Builds configurations and runs (workload, design) pairs.
#[derive(Debug, Clone)]
pub struct Runner {
    /// The scale of each simulation.
    pub scale: ExperimentScale,
    /// RNG seed shared by every run (kept fixed so designs see identical
    /// traces).
    pub seed: u64,
    /// Worker threads used for batched cells; `0` selects the host's
    /// available parallelism.
    pub jobs: usize,
    /// Timing-shard threads *inside* each simulated cell (`--shards`):
    /// `1` (the default) runs the proven sequential loop, `N > 1` splits
    /// DRAM-channel timing across `N - 1` workers plus the coordinator.
    /// Results are byte-identical either way. Clamped per batch so
    /// `jobs x shards` never oversubscribes the host (see
    /// [`Runner::effective_parallelism`]).
    pub shards: usize,
    /// Directory of the persistent result store; `None` disables caching
    /// (every cell is recomputed).
    pub store_dir: Option<PathBuf>,
    /// Capture and resume warmed-state snapshots through the result store
    /// (no effect without a store). On by default; the `experiments` binary
    /// turns it off for `--no-snapshot` / `BANSHEE_NO_SNAPSHOT=1`.
    pub snapshots: bool,
    /// Print per-cell progress and wall-clock times to stderr.
    pub progress: bool,
    /// Time-resolved telemetry: when set, every simulated cell records
    /// epoch samples, an event trace and a self-profile, exported under
    /// [`TelemetryOptions::dir`]. Store hits are bypassed (re-simulated) so
    /// each cell actually emits telemetry; results are byte-identical
    /// either way.
    pub telemetry: Option<TelemetryOptions>,
    /// Frequency-tracking backend applied to every cell's configuration
    /// (`--freq-backend` / `BANSHEE_FREQ_BACKEND`; exact by default).
    pub frequency_backend: banshee_common::FrequencyBackendKind,
    /// Tallies of simulated vs. store-resumed cells (shared across clones).
    pub counters: RunnerCounters,
}

impl Runner {
    /// A runner at the given scale: host parallelism, no result store, no
    /// progress output.
    pub fn new(scale: ExperimentScale) -> Self {
        Runner {
            scale,
            seed: 42,
            jobs: 0,
            shards: 1,
            store_dir: None,
            snapshots: true,
            progress: false,
            telemetry: None,
            frequency_backend: banshee_common::FrequencyBackendKind::Exact,
            counters: RunnerCounters::default(),
        }
    }

    /// Track page/line access frequencies with `backend` in every cell
    /// (exact hash maps by default; non-default backends re-key the store).
    pub fn with_frequency_backend(mut self, backend: banshee_common::FrequencyBackendKind) -> Self {
        self.frequency_backend = backend;
        self
    }

    /// Use `jobs` worker threads (`0` = available parallelism).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Use `shards` timing-shard threads inside each simulated cell
    /// (`1` or `0` = sequential). Results are byte-identical across shard
    /// counts; this only changes wall-clock time.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Cache results persistently under `dir`.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Enable or disable warmed-state snapshot capture/resume.
    pub fn with_snapshots(mut self, snapshots: bool) -> Self {
        self.snapshots = snapshots;
        self
    }

    /// Print per-cell progress to stderr.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Record time-resolved telemetry for every simulated cell, exporting
    /// the files under `dir`.
    pub fn with_telemetry(mut self, dir: impl Into<PathBuf>, config: TelemetryConfig) -> Self {
        self.telemetry = Some(TelemetryOptions {
            dir: dir.into(),
            config,
        });
        self
    }

    /// Resolve the `(jobs, shards)` pair a batch of `batch_size` simulated
    /// cells will actually use. `jobs = 0` resolves to the host's available
    /// parallelism (then drops to the batch size — idle workers would only
    /// starve shards of threads). If `jobs x shards` still exceeds the
    /// available parallelism, **shards** are scaled down — cell-level
    /// parallelism wins because cells are embarrassingly parallel while
    /// shard speedup is sublinear. The clamp never lifts `shards` above the
    /// requested value and never touches an explicit `jobs` request.
    pub fn effective_parallelism(&self, batch_size: usize) -> (usize, usize) {
        let available = JobPool::available_workers();
        let jobs = if self.jobs == 0 { available } else { self.jobs };
        let jobs = jobs.min(batch_size.max(1));
        let shards = self.shards.max(1);
        let shards = if jobs.saturating_mul(shards) > available {
            (available / jobs).max(1).min(shards)
        } else {
            shards
        };
        (jobs, shards)
    }

    /// The base configuration for a design at this scale.
    pub fn config(&self, design: DramCacheDesign) -> SimConfig {
        let mut cfg = SimConfig::scaled(design, self.scale.dram_cache_capacity());
        cfg.cores = self.scale.cores();
        cfg.hierarchy = banshee_memhier::HierarchyConfig {
            llc_size: MemSize::bytes(
                (self.scale.dram_cache_capacity().as_bytes() / 32).max(256 * 1024),
            ),
            ..banshee_memhier::HierarchyConfig::paper_default(self.scale.cores())
        };
        cfg.total_instructions = self.scale.instructions();
        cfg.warmup_instructions = self.scale.warmup_instructions();
        cfg.seed = self.seed;
        cfg.frequency_backend = self.frequency_backend;
        cfg
    }

    /// The workload object for a suite entry at this scale.
    pub fn workload(&self, kind: WorkloadKind) -> Workload {
        let footprint = self.scale.dram_cache_capacity().as_bytes() * self.scale.footprint_factor();
        Workload::new(kind, footprint, self.seed)
    }

    /// The store key material for one cell: everything that affects its
    /// result (full simulation config, workload identity, footprint, seed).
    pub fn cell_key_material(&self, config: &SimConfig, kind: WorkloadKind) -> String {
        let workload = self.workload(kind);
        format!(
            "banshee-cell-v1|workload={:?}|footprint={}|wseed={}|{}",
            workload.kind,
            workload.total_footprint_bytes,
            workload.seed,
            config.cache_key_material()
        )
    }

    /// The canonical workload identity for a built-in suite entry:
    /// everything that shapes its trace stream, independent of the
    /// simulation configuration (keys the warmed-snapshot namespace).
    pub fn workload_ident(&self, kind: WorkloadKind) -> String {
        let workload = self.workload(kind);
        format!(
            "{:?}|footprint={}|wseed={}",
            workload.kind, workload.total_footprint_bytes, workload.seed
        )
    }

    /// Run one (design, workload) pair with the default configuration.
    pub fn run(&self, design: DramCacheDesign, kind: WorkloadKind) -> SimResult {
        self.run_with(self.config(design), kind)
    }

    /// Run one workload under an explicit configuration (for sweeps).
    pub fn run_with(&self, config: SimConfig, kind: WorkloadKind) -> SimResult {
        self.run_batch(vec![(config, kind)])
            .pop()
            .expect("one cell in, one result out")
    }

    /// Prepare one (config, built-in workload) cell for the execution
    /// engine: resolve its labels, store key and trace factory.
    pub fn prepare(&self, config: SimConfig, kind: WorkloadKind) -> PreparedCell {
        PreparedCell {
            workload_label: kind.name(),
            design_label: config.design.label(),
            key_material: self.cell_key_material(&config, kind),
            workload_ident: self.workload_ident(kind),
            factory: Arc::new(self.workload(kind)),
            config,
        }
    }

    /// The file-name label for one cell's telemetry outputs: the cell's
    /// batch slot plus slugged workload and design labels, e.g.
    /// `003_gcc_banshee`.
    fn telemetry_cell_label(slot: usize, cell: &PreparedCell) -> String {
        format!(
            "{:03}_{}_{}",
            slot,
            slug(&cell.workload_label),
            slug(&cell.design_label)
        )
    }

    /// Attach the runner's telemetry settings to a system about to run its
    /// measured phase. `resumed` carries the executed-instruction count when
    /// the system was resumed from a warmed image.
    fn attach_telemetry(
        &self,
        system: &mut System,
        slot: usize,
        cell: &PreparedCell,
        resumed: Option<u64>,
    ) {
        let Some(tel) = &self.telemetry else { return };
        let label = Self::telemetry_cell_label(slot, cell);
        system.enable_telemetry(tel.config);
        system.set_telemetry_sink(TelemetrySink::new(&tel.dir, &label));
        system.set_profile_output(label, self.counters.profiles.clone());
        if let Some(executed) = resumed {
            system.note_snapshot_resume(executed);
        }
    }

    /// Simulate one prepared cell, resuming from (and capturing) a warmed
    /// image through the store when snapshots are enabled. Returns the
    /// result, whether the run resumed from a warmed image, the number of
    /// instructions simulated in this process, and the wall-clock time
    /// spent purely simulating (snapshot get/resume/put I/O excluded, so
    /// the reported instr/s measures the simulator, not the disk).
    ///
    /// A stale or corrupt image is *never* fatal: any resume failure is
    /// reported and the cell re-runs warm-up cold, overwriting the bad
    /// image with a fresh one.
    fn simulate_cell(
        &self,
        slot: usize,
        cell: &PreparedCell,
        store: Option<&ResultStore>,
        shards: usize,
    ) -> (SimResult, bool, u64, Duration) {
        let name = cell.factory.name();
        let snap_key = System::warmed_key_material(&cell.config, &cell.workload_ident);
        if self.snapshots {
            if let Some(store) = store {
                if let Some(image) = store.get_snapshot(&snap_key, SimConfig::MODEL_REVISION) {
                    match System::resume_warmed(
                        cell.config.clone(),
                        &*cell.factory,
                        &cell.workload_ident,
                        &image,
                    ) {
                        Ok((mut system, executed)) => {
                            system.set_shards(shards);
                            self.attach_telemetry(&mut system, slot, cell, Some(executed));
                            let sim_start = Instant::now();
                            let result = system.run_measured(&name, Some(executed));
                            let sim_time = sim_start.elapsed();
                            let instructions = result.instructions;
                            return (result, true, instructions, sim_time);
                        }
                        Err(err) => eprintln!(
                            "[exec] warning: discarding warmed image for {} x {} ({err}); re-warming",
                            cell.workload_label, cell.design_label
                        ),
                    }
                }
            }
        }
        let mut system = System::new(cell.config.clone(), &*cell.factory);
        system.set_shards(shards);
        self.attach_telemetry(&mut system, slot, cell, None);
        let sim_start = Instant::now();
        let warmed = system.warm_up();
        let mut sim_time = sim_start.elapsed();
        if self.snapshots {
            if let (Some(store), Some(executed)) = (store, warmed) {
                let image = system.warmed_image(&cell.workload_ident, executed);
                if let Err(err) = store.put_snapshot(&snap_key, &image) {
                    eprintln!("[exec] warning: failed to store a warmed image ({err})");
                }
            }
        }
        let sim_start = Instant::now();
        let result = system.run_measured(&name, warmed);
        sim_time += sim_start.elapsed();
        let instructions = result.instructions + warmed.unwrap_or(0);
        (result, false, instructions, sim_time)
    }

    /// Run a batch of (config, workload) cells through the execution
    /// engine. Results come back in input order; cells already present in
    /// the result store are not re-simulated, and identical cells within
    /// the batch are simulated once and share the result.
    pub fn run_batch(&self, cells: Vec<(SimConfig, WorkloadKind)>) -> Vec<SimResult> {
        self.run_batch_observed(cells, |_| {})
    }

    /// Like [`Runner::run_batch`], reporting each cell's outcome to
    /// `observe` (store hits first, then simulated cells in completion
    /// order; `observe` runs on worker threads). Duplicate cells are
    /// reported once, for the copy that actually runs.
    pub fn run_batch_observed<O>(
        &self,
        cells: Vec<(SimConfig, WorkloadKind)>,
        observe: O,
    ) -> Vec<SimResult>
    where
        O: Fn(&CellReport) + Sync,
    {
        let prepared = cells
            .into_iter()
            .map(|(config, kind)| self.prepare(config, kind))
            .collect();
        self.run_prepared_observed(prepared, observe)
    }

    /// Run a batch of fully-prepared cells (scenario cells and built-in
    /// cells alike) through the engine, with the same store-resume,
    /// deduplication and ordering guarantees as [`Runner::run_batch`].
    pub fn run_prepared(&self, cells: Vec<PreparedCell>) -> Vec<SimResult> {
        self.run_prepared_observed(cells, |_| {})
    }

    /// Like [`Runner::run_prepared`], reporting each cell's outcome to
    /// `observe`.
    pub fn run_prepared_observed<O>(&self, cells: Vec<PreparedCell>, observe: O) -> Vec<SimResult>
    where
        O: Fn(&CellReport) + Sync,
    {
        let total = cells.len();
        let store = self
            .store_dir
            .as_ref()
            .and_then(|dir| match ResultStore::open(dir) {
                Ok(store) => Some(store),
                Err(err) => {
                    eprintln!(
                        "[exec] warning: result store at {} unavailable ({err}); recomputing",
                        dir.display()
                    );
                    None
                }
            });

        let mut results: Vec<Option<SimResult>> = Vec::with_capacity(total);
        results.resize_with(total, || None);
        // `misses` are the cells that will actually be simulated; a cell
        // identical to an earlier miss becomes that miss's duplicate
        // instead (e.g. a sweep's default setting appearing in two panels).
        let mut misses: Vec<usize> = Vec::new();
        let mut miss_by_material: HashMap<&str, usize> = HashMap::new();
        let mut duplicates: Vec<(usize, usize)> = Vec::new(); // (slot, misses idx)
        let mut hits = 0usize;
        for (index, cell) in cells.iter().enumerate() {
            // With telemetry on, store hits are bypassed: every cell must
            // actually simulate to emit its time series (results are
            // byte-identical, and the store is refreshed on completion).
            let cached = if self.telemetry.is_some() {
                None
            } else {
                store
                    .as_ref()
                    .and_then(|s| s.get_decoded::<SimResult>(&cell.key_material))
            };
            match cached {
                Some(result) => {
                    let report = CellReport {
                        index,
                        workload: cell.workload_label.clone(),
                        design: cell.design_label.clone(),
                        from_store: true,
                        resumed_warm: false,
                        panicked: false,
                        duration: Duration::ZERO,
                        sim_duration: Duration::ZERO,
                        instructions: result.instructions,
                    };
                    self.counters.record(&report);
                    observe(&report);
                    results[index] = Some(result);
                    hits += 1;
                }
                None => match miss_by_material.entry(cell.key_material.as_str()) {
                    std::collections::hash_map::Entry::Occupied(first) => {
                        duplicates.push((index, *first.get()));
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(misses.len());
                        misses.push(index);
                    }
                },
            }
        }
        if self.progress && hits > 0 {
            eprintln!("[exec] {hits}/{total} cells already in the result store");
        }
        if misses.is_empty() && duplicates.is_empty() {
            return results.into_iter().map(|r| r.unwrap()).collect();
        }

        let (jobs, shards) = self.effective_parallelism(misses.len());
        if shards < self.shards.max(1) {
            eprintln!(
                "[exec] clamped --shards {} to {}: {} job(s) x {} shard(s) would oversubscribe {} available thread(s)",
                self.shards,
                shards,
                jobs,
                self.shards,
                JobPool::available_workers(),
            );
        }
        self.counters
            .effective_shards
            .store(shards, Ordering::Relaxed);
        let pool = JobPool::new(jobs);
        let miss_cells: Vec<PreparedCell> = misses.iter().map(|&i| cells[i].clone()).collect();
        // Set by the worker before it returns, read by the (same-thread)
        // completion callback: whether each miss resumed from a warmed
        // image.
        let resumed_flags: Vec<AtomicBool> = (0..miss_cells.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        let instr_counts: Vec<AtomicU64> =
            (0..miss_cells.len()).map(|_| AtomicU64::new(0)).collect();
        let sim_micros: Vec<AtomicU64> = (0..miss_cells.len()).map(|_| AtomicU64::new(0)).collect();
        let outputs = pool.run_with_progress(
            miss_cells,
            |index, cell| {
                let (result, resumed, instructions, sim_time) =
                    self.simulate_cell(misses[index], cell, store.as_ref(), shards);
                if resumed {
                    resumed_flags[index].store(true, Ordering::Relaxed);
                }
                instr_counts[index].store(instructions, Ordering::Relaxed);
                sim_micros[index].store(sim_time.as_micros() as u64, Ordering::Relaxed);
                // Persist from the worker, as soon as the cell finishes:
                // a sweep interrupted mid-batch resumes from every
                // completed cell, not just completed batches.
                if let Some(store) = &store {
                    if let Err(err) = store.put_encoded(&cell.key_material, &result) {
                        eprintln!("[exec] warning: failed to cache a cell ({err})");
                    }
                }
                result
            },
            |completion| {
                let cell = &cells[misses[completion.index]];
                let report = CellReport {
                    index: misses[completion.index],
                    workload: cell.workload_label.clone(),
                    design: cell.design_label.clone(),
                    from_store: false,
                    resumed_warm: resumed_flags[completion.index].load(Ordering::Relaxed),
                    panicked: completion.panicked,
                    duration: completion.duration,
                    sim_duration: Duration::from_micros(
                        sim_micros[completion.index].load(Ordering::Relaxed),
                    ),
                    instructions: instr_counts[completion.index].load(Ordering::Relaxed),
                };
                if self.progress {
                    eprintln!(
                        "[exec] {}/{} {} x {} ({:.2}s, {:.2}s sim, {:.2} Minstr/s{}{}){}",
                        completion.completed,
                        completion.total,
                        report.workload,
                        report.design,
                        completion.duration.as_secs_f64(),
                        report.sim_duration.as_secs_f64(),
                        report.instr_per_sec() / 1e6,
                        if shards > 1 { ", sharded" } else { "" },
                        if report.resumed_warm { ", warmed" } else { "" },
                        if completion.panicked { " PANICKED" } else { "" },
                    );
                }
                self.counters.record(&report);
                observe(&report);
            },
        );

        let mut panics = Vec::new();
        for (&slot, output) in misses.iter().zip(outputs) {
            match output.result {
                Ok(result) => results[slot] = Some(result),
                Err(panic) => panics.push(format!(
                    "{} x {}: {}",
                    cells[slot].workload_label, cells[slot].design_label, panic.message
                )),
            }
        }
        for &(slot, miss_idx) in &duplicates {
            results[slot] = results[misses[miss_idx]].clone();
        }
        // Completed cells are already cached, so a re-run after the panic is
        // fixed resumes instead of starting over.
        if !panics.is_empty() {
            panic!(
                "{} of {} cells panicked: {}",
                panics.len(),
                total,
                panics.join("; ")
            );
        }
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Run the full designs × workloads matrix.
    pub fn run_matrix(
        &self,
        designs: &[DramCacheDesign],
        workloads: &[WorkloadKind],
    ) -> MatrixResults {
        let cells: Vec<(SimConfig, WorkloadKind)> = workloads
            .iter()
            .flat_map(|&kind| {
                designs
                    .iter()
                    .map(move |&design| (self.config(design), kind))
            })
            .collect();
        let labels: Vec<(String, String)> = cells
            .iter()
            .map(|(config, kind)| (kind.name(), config.design.label()))
            .collect();
        let mut results = MatrixResults::default();
        for ((workload, design), r) in labels.into_iter().zip(self.run_batch(cells)) {
            results.insert(workload, design, r);
        }
        results
    }
}

/// Results of a designs × workloads matrix, indexed by (workload, design)
/// labels.
#[derive(Debug, Clone, Default)]
pub struct MatrixResults {
    results: HashMap<(String, String), SimResult>,
    workload_order: Vec<String>,
    workload_set: HashSet<String>,
    design_order: Vec<String>,
    design_set: HashSet<String>,
}

impl MatrixResults {
    /// Store one result.
    pub fn insert(&mut self, workload: String, design: String, result: SimResult) {
        if self.workload_set.insert(workload.clone()) {
            self.workload_order.push(workload.clone());
        }
        if self.design_set.insert(design.clone()) {
            self.design_order.push(design.clone());
        }
        self.results.insert((workload, design), result);
    }

    /// Look up one result.
    pub fn get(&self, workload: &str, design: &str) -> Option<&SimResult> {
        self.results
            .get(&(workload.to_string(), design.to_string()))
    }

    /// Workload labels in insertion order.
    pub fn workloads(&self) -> &[String] {
        &self.workload_order
    }

    /// Design labels in insertion order.
    pub fn designs(&self) -> &[String] {
        &self.design_order
    }

    /// Geometric mean of a per-workload metric over all workloads, for one
    /// design. Workloads where the metric is non-positive are skipped.
    pub fn geomean<F>(&self, design: &str, metric: F) -> f64
    where
        F: Fn(&SimResult) -> f64,
    {
        let values: Vec<f64> = self
            .workload_order
            .iter()
            .filter_map(|w| self.get(w, design))
            .map(&metric)
            .filter(|v| *v > 0.0)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
        }
    }

    /// Arithmetic mean of a per-workload metric for one design.
    pub fn mean<F>(&self, design: &str, metric: F) -> f64
    where
        F: Fn(&SimResult) -> f64,
    {
        let values: Vec<f64> = self
            .workload_order
            .iter()
            .filter_map(|w| self.get(w, design))
            .map(&metric)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Every stored result (for JSON export).
    pub fn all(&self) -> Vec<&SimResult> {
        self.workload_order
            .iter()
            .flat_map(|w| self.design_order.iter().filter_map(move |d| self.get(w, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_workloads::SpecProgram;

    #[test]
    fn smoke_matrix_runs_and_indexes() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let designs = [DramCacheDesign::NoCache, DramCacheDesign::Banshee];
        let workloads = [WorkloadKind::Spec(SpecProgram::Gcc)];
        let m = runner.run_matrix(&designs, &workloads);
        assert_eq!(m.workloads().len(), 1);
        assert_eq!(m.designs().len(), 2);
        let no = m.get("gcc", "NoCache").unwrap();
        let ban = m.get("gcc", "Banshee").unwrap();
        assert!(no.instructions > 0 && ban.instructions > 0);
        assert!(m.geomean("Banshee", |r| r.ipc()) > 0.0);
        assert!(m.mean("NoCache", |r| r.ipc()) > 0.0);
        assert_eq!(m.all().len(), 2);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentScale::Smoke.instructions() < ExperimentScale::Quick.instructions());
        assert!(ExperimentScale::Quick.instructions() < ExperimentScale::Standard.instructions());
        assert!(
            ExperimentScale::Quick.dram_cache_capacity()
                <= ExperimentScale::Standard.dram_cache_capacity()
        );
        assert_eq!(ExperimentScale::Quick.name(), "quick");
    }

    #[test]
    fn config_respects_scale() {
        let r = Runner::new(ExperimentScale::Smoke);
        let cfg = r.config(DramCacheDesign::Banshee);
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.total_instructions, 300_000);
        assert_eq!(cfg.dcache.capacity, MemSize::mib(8));
    }

    #[test]
    fn matrix_insert_deduplicates_order_labels() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let r = runner.run(
            DramCacheDesign::NoCache,
            WorkloadKind::Spec(SpecProgram::Gcc),
        );
        let mut m = MatrixResults::default();
        for _ in 0..3 {
            m.insert("gcc".into(), "NoCache".into(), r.clone());
        }
        m.insert("gcc".into(), "Banshee".into(), r.clone());
        assert_eq!(m.workloads(), ["gcc".to_string()]);
        assert_eq!(m.designs(), ["NoCache".to_string(), "Banshee".to_string()]);
    }

    #[test]
    fn warmed_images_are_reused_and_reproduce_cold_results() {
        let dir =
            std::env::temp_dir().join(format!("banshee_runner_snap_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let kind = WorkloadKind::Spec(SpecProgram::Gcc);

        // Pass 1: cold — simulates and leaves a warmed image behind.
        let first = Runner::new(ExperimentScale::Smoke).with_store(&dir);
        first.run(DramCacheDesign::Banshee, kind);
        assert_eq!(first.counters.simulated(), 1);
        assert_eq!(first.counters.resumed_warm(), 0);
        assert_eq!(first.counters.cold(), 1);

        // Pass 2: a different measurement budget misses the result cache
        // but shares the warmed image (total_instructions is the only
        // post-warm-up knob).
        let second = Runner::new(ExperimentScale::Smoke).with_store(&dir);
        let mut cfg = second.config(DramCacheDesign::Banshee);
        cfg.total_instructions /= 2;
        let resumed = second.run_with(cfg.clone(), kind);
        assert_eq!(second.counters.simulated(), 1);
        assert_eq!(second.counters.resumed_warm(), 1);
        assert_eq!(second.counters.cold(), 0);

        // The resumed result is byte-identical to a cold run of the same
        // configuration (no store, no snapshots).
        let cold = Runner::new(ExperimentScale::Smoke).run_with(cfg.clone(), kind);
        assert_eq!(
            serde_json::to_string_pretty(&resumed).unwrap(),
            serde_json::to_string_pretty(&cold).unwrap()
        );

        // --no-snapshot: same store, third budget, must run cold.
        let third = Runner::new(ExperimentScale::Smoke)
            .with_store(&dir)
            .with_snapshots(false);
        let mut cfg3 = cfg;
        cfg3.total_instructions /= 2;
        third.run_with(cfg3, kind);
        assert_eq!(third.counters.resumed_warm(), 0);
        assert_eq!(third.counters.cold(), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: `jobs x shards` must never exceed the host's available
    /// parallelism — the clamp scales shards down, never jobs, and never
    /// scales anything up.
    #[test]
    fn shard_clamp_never_oversubscribes() {
        let available = JobPool::available_workers();
        let greedy = Runner::new(ExperimentScale::Smoke)
            .with_jobs(1)
            .with_shards(available + 7);
        let (jobs, shards) = greedy.effective_parallelism(4);
        assert_eq!(jobs, 1);
        assert_eq!(shards, available, "one job gets every available thread");

        // An in-budget request passes through untouched.
        let modest = Runner::new(ExperimentScale::Smoke)
            .with_jobs(available)
            .with_shards(1);
        assert_eq!(modest.effective_parallelism(64), (available, 1));

        // `jobs = 0` resolves to available parallelism but drops to the
        // batch size, freeing threads for shards.
        let auto = Runner::new(ExperimentScale::Smoke).with_shards(available);
        let (jobs, shards) = auto.effective_parallelism(1);
        assert_eq!(jobs, 1);
        assert_eq!(shards, available);

        // Shards are never raised above the request.
        let seq = Runner::new(ExperimentScale::Smoke).with_jobs(1);
        assert_eq!(seq.effective_parallelism(3), (1, 1));
    }

    #[test]
    fn cell_records_split_sim_time_from_snapshot_io() {
        let dir = std::env::temp_dir().join(format!(
            "banshee_runner_simtime_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let runner = Runner::new(ExperimentScale::Smoke).with_store(&dir);
        runner.run(
            DramCacheDesign::NoCache,
            WorkloadKind::Spec(SpecProgram::Gcc),
        );
        let records = runner.counters.cell_records();
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        assert!(rec.sim_seconds > 0.0, "cold runs spend time simulating");
        assert!(
            rec.sim_seconds <= rec.seconds,
            "sim time ({:.4}s) is a subset of total cell time ({:.4}s)",
            rec.sim_seconds,
            rec.seconds
        );
        assert!(rec.instr_per_sec > 0.0);
        assert!(runner.counters.sim_only_time() <= runner.counters.simulated_time());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_key_material_distinguishes_cells() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let cfg = runner.config(DramCacheDesign::Banshee);
        let a = runner.cell_key_material(&cfg, WorkloadKind::Spec(SpecProgram::Gcc));
        let b = runner.cell_key_material(&cfg, WorkloadKind::Spec(SpecProgram::Mcf));
        let c = runner.cell_key_material(
            &runner.config(DramCacheDesign::Tdc),
            WorkloadKind::Spec(SpecProgram::Gcc),
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            runner.cell_key_material(&cfg, WorkloadKind::Spec(SpecProgram::Gcc))
        );
        // A sketch backend is a different store cell; the exact default
        // reproduces historical keys.
        let sketch = Runner::new(ExperimentScale::Smoke).with_frequency_backend(
            banshee_common::FrequencyBackendKind::Cms {
                width: 4096,
                depth: 4,
            },
        );
        let d = sketch.cell_key_material(
            &sketch.config(DramCacheDesign::Banshee),
            WorkloadKind::Spec(SpecProgram::Gcc),
        );
        assert_ne!(a, d);
        assert!(!a.contains("frequency_backend"));
        assert!(d.contains("frequency_backend"));
    }
}
