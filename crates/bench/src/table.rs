//! Plain-text table formatting and JSON export for experiment output.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have the same arity as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with 2 decimal places (the precision the paper's figures
/// can be read at).
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float as a percentage with 1 decimal place.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Directory where experiment JSON is written.
pub fn output_dir() -> PathBuf {
    let dir = Path::new("target").join("experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a serializable value as pretty JSON under `target/experiments/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let path = output_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["workload", "speedup"]);
        t.row(vec!["pagerank".into(), "1.52".into()]);
        t.row(vec!["mcf".into(), "2.10".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("workload"));
        assert!(s.contains("pagerank"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_row_rejected() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt2(1.234), "1.23");
        assert_eq!(fmt_pct(0.3571), "35.7%");
    }

    #[test]
    fn json_written_to_target() {
        let path = write_json("unit_test_output", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains('1'));
    }
}
