//! Table 1: per-access behaviour of each DRAM-cache design, measured
//! directly from the controllers (hit traffic, miss traffic, whether a probe
//! is needed for dirty evictions).
//!
//! The paper's Table 1 is analytical; this experiment verifies that the
//! implemented controllers actually exhibit those per-access costs, by
//! driving each controller with a canned hit / miss / dirty-eviction
//! sequence and reporting the bytes each request moved.

use crate::table::{write_json, Table};
use banshee::{BansheeConfig, BansheeController, BansheeVariant};
use banshee_common::{DramKind, MemSize, PageNum};
use banshee_dcache::{
    alloy::AlloyCache, cacheonly::CacheOnly, nocache::NoCache, tdc::Tdc, unison::UnisonCache,
    DCacheConfig, DramCacheController, MemRequest,
};
use serde::Serialize;

/// Measured per-access behaviour of one design.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Design label.
    pub design: String,
    /// In-package bytes moved by one DRAM-cache hit.
    pub hit_in_bytes: u64,
    /// In-package bytes moved by one DRAM-cache miss (excluding any
    /// replacement the miss triggers).
    pub miss_in_bytes: u64,
    /// Off-package bytes moved by one miss (critical path only).
    pub miss_off_bytes: u64,
    /// Whether an LLC dirty eviction needed an in-package tag probe.
    pub dirty_eviction_probe_bytes: u64,
}

/// Build a row by driving a controller through a canned sequence.
fn measure(name: &str, controller: &mut dyn DramCacheController, warm_page: PageNum) -> Table1Row {
    use banshee_common::TrafficClass;
    use banshee_dcache::PlanSink;
    // Warm the page so that a subsequent access is a hit (designs that never
    // hit, e.g. NoCache, simply keep reporting miss traffic).
    let mut sink = PlanSink::new();
    for i in 0..128u64 {
        let addr = warm_page.line_at(i % 64).base_addr();
        let hint = controller.current_mapping(warm_page);
        sink.reset();
        controller.access(&MemRequest::demand(addr, 0).with_hint(hint), i, &mut sink);
    }

    // One hit (or at least a steady-state access) to the warm page.
    let hint = controller.current_mapping(warm_page);
    let hit_plan = controller.access_collected(
        &MemRequest::demand(warm_page.line_at(0).base_addr(), 0).with_hint(hint),
        1_000,
    );
    // One cold miss far away.
    let cold = PageNum::new(0x00DE_AD00);
    let miss_plan = controller.access_collected(
        &MemRequest::demand(cold.base_addr(), 0).with_hint(controller.current_mapping(cold)),
        2_000,
    );
    // One dirty eviction of a line that carries no TLB mapping hint.
    let wb_plan = controller.access_collected(
        &MemRequest::writeback(warm_page.line_at(1).base_addr(), 0),
        3_000,
    );

    Table1Row {
        design: name.to_string(),
        hit_in_bytes: hit_plan
            .critical
            .iter()
            .filter(|o| o.dram == DramKind::InPackage)
            .map(|o| o.bytes)
            .sum(),
        miss_in_bytes: miss_plan
            .critical
            .iter()
            .filter(|o| o.dram == DramKind::InPackage)
            .map(|o| o.bytes)
            .sum(),
        miss_off_bytes: miss_plan
            .critical
            .iter()
            .filter(|o| o.dram == DramKind::OffPackage)
            .map(|o| o.bytes)
            .sum(),
        dirty_eviction_probe_bytes: wb_plan.bytes_of_class(TrafficClass::Tag),
    }
}

/// Measure every design.
pub fn run() -> Vec<Table1Row> {
    let dcfg = DCacheConfig::scaled(MemSize::mib(4));
    let warm = PageNum::new(17);
    let mut rows = Vec::new();

    let mut nocache = NoCache::new();
    rows.push(measure("NoCache", &mut nocache, warm));
    let mut cacheonly = CacheOnly::new();
    rows.push(measure("CacheOnly", &mut cacheonly, warm));
    let mut alloy = AlloyCache::new(&dcfg, 1.0);
    rows.push(measure("Alloy", &mut alloy, warm));
    let mut unison = UnisonCache::new(&dcfg);
    rows.push(measure("Unison", &mut unison, warm));
    let mut tdc = Tdc::new(&dcfg);
    rows.push(measure("TDC", &mut tdc, warm));
    let mut banshee = BansheeController::with_variant(
        BansheeConfig::from_dcache(&dcfg),
        BansheeVariant::FbrNoSample,
    );
    rows.push(measure("Banshee", &mut banshee, warm));
    rows
}

/// Print and persist the table.
pub fn report() -> Vec<Table> {
    let rows = run();
    let mut t = Table::new(
        "Table 1 (measured): per-access DRAM traffic of each design",
        &[
            "design",
            "hit in-pkg B",
            "miss in-pkg B",
            "miss off-pkg B",
            "dirty-evict probe B",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.design.clone(),
            r.hit_in_bytes.to_string(),
            r.miss_in_bytes.to_string(),
            r.miss_off_bytes.to_string(),
            r.dirty_eviction_probe_bytes.to_string(),
        ]);
    }
    let _ = write_json("table1_per_access_behaviour", &rows);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rows_match_paper_table1() {
        let rows = run();
        let get = |name: &str| rows.iter().find(|r| r.design == name).unwrap();

        // Alloy: hit streams 96 B (64 data + 32 tag); miss also probes 96 B
        // in-package before going off-package.
        let alloy = get("Alloy");
        assert_eq!(alloy.hit_in_bytes, 96);
        assert_eq!(alloy.miss_in_bytes, 96);
        assert_eq!(alloy.miss_off_bytes, 64);

        // Unison: hit reads tags + data (96 B on the critical path); miss
        // also wastes a speculative way.
        let unison = get("Unison");
        assert!(unison.hit_in_bytes >= 96);
        assert!(unison.miss_in_bytes >= 96);

        // Banshee: tagless — a hit is 64 B, a miss touches no in-package
        // DRAM at all.
        let banshee = get("Banshee");
        assert_eq!(banshee.hit_in_bytes, 64, "Banshee hit");
        assert_eq!(banshee.miss_in_bytes, 0, "Banshee miss");
        assert_eq!(banshee.miss_off_bytes, 64, "Banshee miss off-package");

        // TDC: hits are tagless (the mapping came from the TLB), but the
        // miss path consults the in-DRAM page map (32 B) before the
        // off-package fetch.
        let tdc = get("TDC");
        assert_eq!(tdc.hit_in_bytes, 64, "TDC hit");
        assert_eq!(tdc.miss_in_bytes, 32, "TDC miss consults the page map");
        assert_eq!(tdc.miss_off_bytes, 64, "TDC miss off-package");

        // Banshee's dirty eviction needed no probe (the tag buffer remembers
        // the warm page); Unison always probes its tags, TDC its page map.
        assert_eq!(get("Banshee").dirty_eviction_probe_bytes, 0);
        assert_eq!(get("Unison").dirty_eviction_probe_bytes, 32);
        assert_eq!(get("TDC").dirty_eviction_probe_bytes, 32);

        // NoCache never touches in-package DRAM.
        assert_eq!(get("NoCache").hit_in_bytes, 0);
        assert_eq!(get("CacheOnly").miss_in_bytes, 64);
    }
}
