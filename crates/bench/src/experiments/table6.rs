//! Table 6: DRAM-cache miss rate as a function of Banshee's associativity
//! (1, 2, 4 and 8 ways).

use crate::runner::Runner;
use crate::table::{fmt_pct, write_json, Table};
use banshee::BansheeConfig;
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One column of Table 6.
#[derive(Debug, Clone, Serialize)]
pub struct Table6Entry {
    /// Number of ways.
    pub ways: usize,
    /// Mean DRAM-cache miss rate across the suite.
    pub miss_rate: f64,
}

/// The associativities the paper sweeps.
pub const WAYS: [usize; 4] = [1, 2, 4, 8];

/// Run the sweep as one batch through the execution engine.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table6Entry> {
    let cells: Vec<_> = WAYS
        .iter()
        .flat_map(|&ways| {
            workloads.iter().map(move |&w| {
                let mut cfg = runner.config(DramCacheDesign::Banshee);
                cfg.dcache.ways = ways;
                cfg.banshee = Some(BansheeConfig {
                    ways,
                    cached_entries_per_set: ways,
                    ..BansheeConfig::from_dcache(&cfg.dcache)
                });
                (cfg, w)
            })
        })
        .collect();
    let mut results = runner.run_batch(cells).into_iter();

    let mut out = Vec::new();
    for &ways in &WAYS {
        let rates: Vec<f64> = workloads
            .iter()
            .map(|_| results.next().expect("sweep cell").dram_cache_miss_rate())
            .collect();
        out.push(Table6Entry {
            ways,
            miss_rate: rates.iter().sum::<f64>() / rates.len().max(1) as f64,
        });
    }
    out
}

/// Print and persist the table.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let entries = run(runner, workloads);
    let mut t = Table::new(
        "Table 6: DRAM cache miss rate vs associativity (Banshee)",
        &["ways", "miss rate"],
    );
    for e in &entries {
        t.row(vec![e.ways.to_string(), fmt_pct(e.miss_rate)]);
    }
    let _ = write_json("table6_associativity", &entries);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::SpecProgram;

    #[test]
    fn higher_associativity_does_not_hurt_miss_rate() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Spec(SpecProgram::Mcf)];
        let entries = run(&runner, &workloads);
        assert_eq!(entries.len(), 4);
        let one_way = entries[0].miss_rate;
        let eight_way = entries[3].miss_rate;
        // Table 6's trend: more ways → (weakly) lower miss rate. Allow a
        // small tolerance for the stochastic pieces of the policy.
        assert!(
            eight_way <= one_way + 0.05,
            "8-way miss rate {eight_way} should not exceed direct-mapped {one_way}"
        );
        for e in &entries {
            assert!(e.miss_rate >= 0.0 && e.miss_rate <= 1.0);
        }
    }
}
