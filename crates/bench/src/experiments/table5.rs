//! Table 5: page-table update overhead — performance loss relative to free
//! PTE updates for update costs of 10, 20 and 40 µs.

use crate::runner::Runner;
use crate::table::{fmt_pct, write_json, Table};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One row of Table 5.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Cost of the software PTE-update routine in microseconds.
    pub update_cost_us: f64,
    /// Average performance loss across the suite (relative to free updates).
    pub avg_perf_loss: f64,
    /// Maximum performance loss across the suite.
    pub max_perf_loss: f64,
}

/// The update costs the paper sweeps.
pub const COSTS_US: [f64; 3] = [10.0, 20.0, 40.0];

/// Run the sweep. The free-update baselines and every swept cost share one
/// batch through the execution engine.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table5Row> {
    let mut cells = Vec::new();
    // Baseline: (effectively) free updates.
    for &w in workloads {
        let mut cfg = runner.config(DramCacheDesign::Banshee);
        cfg.pte_update_cost_us = 0.0;
        cfg.shootdown_initiator_us = 0.0;
        cfg.shootdown_slave_us = 0.0;
        cells.push((cfg, w));
    }
    for &cost in &COSTS_US {
        for &w in workloads {
            let mut cfg = runner.config(DramCacheDesign::Banshee);
            cfg.pte_update_cost_us = cost;
            cells.push((cfg, w));
        }
    }
    let mut results = runner.run_batch(cells).into_iter();

    let mut free_ipc = std::collections::HashMap::new();
    for &w in workloads {
        let r = results.next().expect("baseline cell");
        free_ipc.insert(w.name(), r.ipc());
    }
    let mut rows = Vec::new();
    for &cost in &COSTS_US {
        let mut losses = Vec::new();
        for _ in workloads {
            let r = results.next().expect("sweep cell");
            let free = free_ipc[&r.workload];
            let loss = if free > 0.0 {
                (1.0 - r.ipc() / free).max(0.0)
            } else {
                0.0
            };
            losses.push(loss);
        }
        let avg = losses.iter().sum::<f64>() / losses.len().max(1) as f64;
        let max = losses.iter().cloned().fold(0.0f64, f64::max);
        rows.push(Table5Row {
            update_cost_us: cost,
            avg_perf_loss: avg,
            max_perf_loss: max,
        });
    }
    rows
}

/// Print and persist the table.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let rows = run(runner, workloads);
    let mut t = Table::new(
        "Table 5: page table update overhead (Banshee)",
        &["update cost (us)", "avg perf loss", "max perf loss"],
    );
    for r in &rows {
        t.row(vec![
            format!("{}", r.update_cost_us),
            fmt_pct(r.avg_perf_loss),
            fmt_pct(r.max_perf_loss),
        ]);
    }
    let _ = write_json("table5_pt_update_overhead", &rows);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::SpecProgram;

    #[test]
    fn overhead_is_small_and_grows_with_cost() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Spec(SpecProgram::Soplex)];
        let rows = run(&runner, &workloads);
        assert_eq!(rows.len(), 3);
        // The paper's headline: the overhead stays small (well under 10%
        // even at 40 µs) because updates are batched and replacement is
        // deliberately rare.
        for r in &rows {
            assert!(
                r.avg_perf_loss < 0.10,
                "update cost {} us caused {:.1}% loss",
                r.update_cost_us,
                r.avg_perf_loss * 100.0
            );
            assert!(r.max_perf_loss >= r.avg_perf_loss - 1e-12);
        }
    }
}
