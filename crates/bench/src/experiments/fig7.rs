//! Figure 7: where Banshee's gain comes from — replacement-policy ablation.
//!
//! Compares, averaged over the workload suite: Banshee with an LRU policy
//! that replaces on every miss, Banshee's FBR without counter sampling,
//! full Banshee, and TDC. The paper reports performance (bars, normalized to
//! NoCache) and DRAM-cache bandwidth consumption (red dots, bytes per
//! instruction).

use crate::runner::Runner;
use crate::table::{fmt2, write_json, Table};
use banshee_common::DramKind;
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One bar (plus its dot) of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Bar {
    /// Policy label.
    pub policy: String,
    /// Mean speedup normalized to NoCache across the suite.
    pub speedup: f64,
    /// Mean in-package DRAM traffic in bytes per instruction.
    pub dram_cache_bytes_per_instr: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Fig7 {
    /// Bars in the paper's order.
    pub bars: Vec<Fig7Bar>,
}

/// The policies compared in Figure 7, in presentation order.
pub fn lineup() -> Vec<DramCacheDesign> {
    vec![
        DramCacheDesign::BansheeLru,
        DramCacheDesign::BansheeFbrNoSample,
        DramCacheDesign::Banshee,
        DramCacheDesign::Tdc,
    ]
}

/// Run the ablation over `workloads` and build the figure.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Fig7 {
    let mut designs = vec![DramCacheDesign::NoCache];
    designs.extend(lineup());
    let matrix = runner.run_matrix(&designs, workloads);

    let mut fig = Fig7::default();
    for design in lineup() {
        let label = design.label();
        let speedup = matrix.geomean(&label, |r| {
            let base = matrix.get(&r.workload, "NoCache").expect("baseline");
            r.speedup_over(base)
        });
        let bpi = matrix.mean(&label, |r| r.total_bytes_per_instr(DramKind::InPackage));
        fig.bars.push(Fig7Bar {
            policy: label,
            speedup,
            dram_cache_bytes_per_instr: bpi,
        });
    }
    fig
}

/// Print and persist the figure.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let fig = run(runner, workloads);
    let mut t = Table::new(
        "Figure 7: replacement-policy ablation (mean over suite)",
        &["policy", "norm. speedup", "DRAM cache bytes/instr"],
    );
    for bar in &fig.bars {
        t.row(vec![
            bar.policy.clone(),
            fmt2(bar.speedup),
            fmt2(bar.dram_cache_bytes_per_instr),
        ]);
    }
    let _ = write_json("fig7_replacement_ablation", &fig);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::SpecProgram;

    #[test]
    fn ablation_orders_banshee_ahead_of_lru() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Spec(SpecProgram::Mcf)];
        let fig = run(&runner, &workloads);
        assert_eq!(fig.bars.len(), 4);
        let get = |name: &str| {
            fig.bars
                .iter()
                .find(|b| b.policy == name)
                .expect("policy present")
        };
        let banshee = get("Banshee");
        let lru = get("Banshee LRU");
        // Replacing on every miss burns far more DRAM-cache bandwidth than
        // the bandwidth-aware policy (the central claim of Figure 7).
        assert!(
            lru.dram_cache_bytes_per_instr > banshee.dram_cache_bytes_per_instr,
            "LRU {} should exceed Banshee {}",
            lru.dram_cache_bytes_per_instr,
            banshee.dram_cache_bytes_per_instr
        );
        assert!(banshee.speedup > 0.0);
    }
}
