//! Section 5.4.2: BATMAN bandwidth balancing on top of Alloy Cache and
//! Banshee.
//!
//! The paper reports that turning off part of the in-package DRAM when it
//! carries more than 80% of the traffic helps Alloy Cache more than Banshee
//! (5% vs 1% on average) because Banshee already consumes less total
//! bandwidth — and that Banshee keeps its lead even with balancing enabled.

use crate::runner::Runner;
use crate::table::{fmt2, fmt_pct, write_json, Table};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One design's with/without-BATMAN comparison.
#[derive(Debug, Clone, Serialize)]
pub struct BatmanRow {
    /// Design label.
    pub design: String,
    /// Geometric-mean IPC without balancing.
    pub ipc_plain: f64,
    /// Geometric-mean IPC with BATMAN.
    pub ipc_batman: f64,
    /// Relative improvement from balancing.
    pub improvement: f64,
}

/// The designs the paper applies BATMAN to.
pub fn lineup() -> Vec<DramCacheDesign> {
    vec![
        DramCacheDesign::Alloy {
            fill_probability: 0.1,
        },
        DramCacheDesign::Banshee,
    ]
}

/// Run the study.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<BatmanRow> {
    let geomean = |values: &[f64]| -> f64 {
        let v: Vec<f64> = values.iter().copied().filter(|x| *x > 0.0).collect();
        if v.is_empty() {
            0.0
        } else {
            (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
        }
    };
    let cells: Vec<_> = lineup()
        .into_iter()
        .flat_map(|design| {
            workloads.iter().flat_map(move |&w| {
                let mut batman_cfg = runner.config(design);
                batman_cfg.use_batman = true;
                [(runner.config(design), w), (batman_cfg, w)]
            })
        })
        .collect();
    let mut results = runner.run_batch(cells).into_iter();

    let mut rows = Vec::new();
    for design in lineup() {
        let mut plain = Vec::new();
        let mut balanced = Vec::new();
        for _ in workloads {
            plain.push(results.next().expect("plain cell").ipc());
            balanced.push(results.next().expect("batman cell").ipc());
        }
        let p = geomean(&plain);
        let b = geomean(&balanced);
        rows.push(BatmanRow {
            design: design.label(),
            ipc_plain: p,
            ipc_batman: b,
            improvement: if p > 0.0 { b / p - 1.0 } else { 0.0 },
        });
    }
    rows
}

/// Print and persist the study.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let rows = run(runner, workloads);
    let mut t = Table::new(
        "Section 5.4.2: BATMAN bandwidth balancing",
        &["design", "IPC", "IPC + BATMAN", "improvement"],
    );
    for r in &rows {
        t.row(vec![
            r.design.clone(),
            fmt2(r.ipc_plain),
            fmt2(r.ipc_batman),
            fmt_pct(r.improvement),
        ]);
    }
    let _ = write_json("batman_bandwidth_balancing", &rows);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::{GraphKernel, WorkloadKind};

    #[test]
    fn batman_study_runs_for_both_designs() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Graph(GraphKernel::PageRank)];
        let rows = run(&runner, &workloads);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ipc_plain > 0.0 && r.ipc_batman > 0.0);
            // Balancing is a second-order optimization: it must not change
            // performance by an order of magnitude in either direction.
            assert!(r.improvement.abs() < 0.5, "{}: {}", r.design, r.improvement);
        }
    }
}
