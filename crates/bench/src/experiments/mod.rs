//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig4`] | Figure 4 — speedup normalized to NoCache + MPKI |
//! | [`fig5`] | Figure 5 — in-package DRAM traffic breakdown |
//! | [`fig6`] | Figure 6 — off-package DRAM traffic |
//! | [`fig7`] | Figure 7 — replacement-policy ablation |
//! | [`fig8`] | Figure 8 — DRAM cache latency / bandwidth sweep |
//! | [`fig9`] | Figure 9 — sampling-coefficient sweep |
//! | [`table1`] | Table 1 — per-access traffic behaviour of each design |
//! | [`table5`] | Table 5 — page-table update overhead |
//! | [`table6`] | Table 6 — associativity vs. miss rate |
//! | [`large_pages`] | Section 5.4.1 — 2 MiB large pages |
//! | [`batman`] | Section 5.4.2 — bandwidth balancing |
//! | [`sketch_fidelity`] | CountMinSketch vs exact frequency tracking |
//! | [`scenario`] | Data-driven scenario files (`experiments scenario FILE...`) |

pub mod batman;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod large_pages;
pub mod scenario;
pub mod sketch_fidelity;
pub mod table1;
pub mod table5;
pub mod table6;

use crate::runner::{ExperimentScale, MatrixResults, Runner};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::{GraphKernel, SpecProgram, WorkloadKind};

/// The full Figure 4/5/6 workload suite (16 workloads).
pub fn full_suite() -> Vec<WorkloadKind> {
    WorkloadKind::figure4_suite()
}

/// A representative subset used for parameter sweeps (Figures 8/9, Tables
/// 5/6) to keep sweep runtimes manageable: three graph kernels spanning the
/// traffic spectrum plus three SPEC programs with contrasting locality.
pub fn sweep_suite() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Graph(GraphKernel::PageRank),
        WorkloadKind::Graph(GraphKernel::Graph500),
        WorkloadKind::Spec(SpecProgram::Mcf),
        WorkloadKind::Spec(SpecProgram::Lbm),
        WorkloadKind::Spec(SpecProgram::Omnetpp),
        WorkloadKind::Spec(SpecProgram::Libquantum),
    ]
}

/// Run the designs × workloads matrix shared by Figures 4, 5 and 6.
pub fn run_main_matrix(runner: &Runner) -> MatrixResults {
    runner.run_matrix(&DramCacheDesign::figure4_lineup(), &full_suite())
}

/// A smaller matrix (sweep suite) used by tests and quick sanity passes.
pub fn run_sweep_matrix(runner: &Runner) -> MatrixResults {
    runner.run_matrix(&DramCacheDesign::figure4_lineup(), &sweep_suite())
}

/// All experiment names accepted by the `experiments` binary.
pub const EXPERIMENT_NAMES: [&str; 13] = [
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "table5",
    "table6",
    "large_pages",
    "batman",
    "sketch_fidelity",
    "all",
];

/// Resolve the scale from CLI-style flags.
pub fn scale_from_flags(quick: bool, smoke: bool) -> ExperimentScale {
    if smoke {
        ExperimentScale::Smoke
    } else if quick {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Standard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(full_suite().len(), 16);
        assert_eq!(sweep_suite().len(), 6);
        assert!(EXPERIMENT_NAMES.contains(&"fig4"));
        assert!(EXPERIMENT_NAMES.contains(&"all"));
    }

    #[test]
    fn scale_flags() {
        assert_eq!(scale_from_flags(false, false), ExperimentScale::Standard);
        assert_eq!(scale_from_flags(true, false), ExperimentScale::Quick);
        assert_eq!(scale_from_flags(true, true), ExperimentScale::Smoke);
    }
}
