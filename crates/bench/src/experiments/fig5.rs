//! Figure 5: in-package DRAM traffic (bytes per instruction) broken down by
//! traffic class for every workload and design.

use crate::runner::MatrixResults;
use crate::table::{fmt2, write_json, Table};
use banshee_common::{DramKind, TrafficClass};
use serde::Serialize;

/// One stacked bar of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Bar {
    /// Workload label.
    pub workload: String,
    /// Design label.
    pub design: String,
    /// Useful hit data (bytes/instruction).
    pub hit_data: f64,
    /// Miss / speculative data.
    pub miss_data: f64,
    /// Tag reads/updates and probes.
    pub tag: f64,
    /// Frequency-counter traffic (Banshee only).
    pub counter: f64,
    /// Cache replacement traffic.
    pub replacement: f64,
    /// Writebacks landing in the in-package DRAM.
    pub writeback: f64,
    /// Sum of all classes.
    pub total: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Fig5 {
    /// One bar per (workload, design).
    pub bars: Vec<Fig5Bar>,
    /// Per-design average total bytes/instruction (the "average" group).
    pub average_total: Vec<(String, f64)>,
}

/// Build Figure 5 from the main matrix.
pub fn build(matrix: &MatrixResults) -> Fig5 {
    let mut fig = Fig5::default();
    for workload in matrix.workloads() {
        for design in matrix.designs() {
            // NoCache and the in-package figure are trivially zero; the paper
            // omits NoCache from this figure, and so do we.
            if design == "NoCache" {
                continue;
            }
            let r = matrix.get(workload, design).expect("full matrix");
            let b = |c: TrafficClass| r.bytes_per_instr(DramKind::InPackage, c);
            fig.bars.push(Fig5Bar {
                workload: workload.clone(),
                design: design.clone(),
                hit_data: b(TrafficClass::HitData),
                miss_data: b(TrafficClass::MissData),
                tag: b(TrafficClass::Tag),
                counter: b(TrafficClass::Counter),
                replacement: b(TrafficClass::Replacement),
                writeback: b(TrafficClass::Writeback),
                total: r.total_bytes_per_instr(DramKind::InPackage),
            });
        }
    }
    for design in matrix.designs() {
        if design == "NoCache" {
            continue;
        }
        fig.average_total.push((
            design.clone(),
            matrix.mean(design, |r| r.total_bytes_per_instr(DramKind::InPackage)),
        ));
    }
    fig
}

/// Print the figure and write its JSON.
pub fn report(matrix: &MatrixResults) -> Vec<Table> {
    let fig = build(matrix);
    let mut t = Table::new(
        "Figure 5: in-package DRAM traffic (bytes per instruction)",
        &[
            "workload",
            "design",
            "HitData",
            "MissData",
            "Tag",
            "Counter",
            "Replacement",
            "Writeback",
            "total",
        ],
    );
    for bar in &fig.bars {
        t.row(vec![
            bar.workload.clone(),
            bar.design.clone(),
            fmt2(bar.hit_data),
            fmt2(bar.miss_data),
            fmt2(bar.tag),
            fmt2(bar.counter),
            fmt2(bar.replacement),
            fmt2(bar.writeback),
            fmt2(bar.total),
        ]);
    }
    let mut avg = Table::new(
        "Figure 5 (average): total in-package bytes per instruction",
        &["design", "bytes/instr"],
    );
    for (design, total) in &fig.average_total {
        avg.row(vec![design.clone(), fmt2(*total)]);
    }
    let _ = write_json("fig5_in_package_traffic", &fig);
    vec![t, avg]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ExperimentScale, Runner};
    use banshee_dcache::DramCacheDesign;
    use banshee_workloads::{SpecProgram, WorkloadKind};

    #[test]
    fn breakdown_classes_sum_to_total() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let matrix = runner.run_matrix(
            &[
                DramCacheDesign::NoCache,
                DramCacheDesign::Alloy {
                    fill_probability: 1.0,
                },
                DramCacheDesign::Banshee,
            ],
            &[WorkloadKind::Spec(SpecProgram::Mcf)],
        );
        let fig = build(&matrix);
        // NoCache is excluded; two bars remain.
        assert_eq!(fig.bars.len(), 2);
        for bar in &fig.bars {
            let sum = bar.hit_data
                + bar.miss_data
                + bar.tag
                + bar.counter
                + bar.replacement
                + bar.writeback;
            assert!((sum - bar.total).abs() < 1e-9, "classes must sum to total");
        }
        // Alloy pays tag bytes on the in-package link; its total exceeds
        // Banshee's.
        let alloy = fig.bars.iter().find(|b| b.design == "Alloy 1").unwrap();
        let banshee = fig.bars.iter().find(|b| b.design == "Banshee").unwrap();
        assert!(alloy.tag > 0.0);
        assert!(alloy.total > banshee.total);
        let tables = report(&matrix);
        assert_eq!(tables.len(), 2);
    }
}
