//! Figure 4: speedup normalized to NoCache (bars) and MPKI (red dots) for
//! every workload and DRAM-cache design.

use crate::runner::MatrixResults;
use crate::table::{fmt2, write_json, Table};
use serde::Serialize;

/// One (workload, design) data point of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Point {
    /// Workload label.
    pub workload: String,
    /// Design label.
    pub design: String,
    /// Speedup relative to NoCache on the same workload.
    pub speedup: f64,
    /// DRAM-cache misses per kilo-instruction.
    pub mpki: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Fig4 {
    /// All data points.
    pub points: Vec<Fig4Point>,
    /// Geometric-mean speedup per design (the "geo-mean" group of bars).
    pub geomean_speedup: Vec<(String, f64)>,
}

/// Build Figure 4 from the main matrix.
pub fn build(matrix: &MatrixResults) -> Fig4 {
    let mut fig = Fig4::default();
    for workload in matrix.workloads() {
        let baseline = matrix
            .get(workload, "NoCache")
            .expect("NoCache baseline must be present");
        for design in matrix.designs() {
            let r = matrix.get(workload, design).expect("full matrix");
            fig.points.push(Fig4Point {
                workload: workload.clone(),
                design: design.clone(),
                speedup: r.speedup_over(baseline),
                mpki: r.mpki(),
            });
        }
    }
    for design in matrix.designs() {
        let gm = matrix.geomean(design, |r| {
            let base = matrix
                .get(&r.workload, "NoCache")
                .expect("baseline present");
            r.speedup_over(base)
        });
        fig.geomean_speedup.push((design.clone(), gm));
    }
    fig
}

/// Print the figure as two tables (speedup and MPKI) and write the JSON.
pub fn report(matrix: &MatrixResults) -> Vec<Table> {
    let fig = build(matrix);
    let designs: Vec<String> = matrix.designs().to_vec();

    let mut header: Vec<&str> = vec!["workload"];
    let design_refs: Vec<&str> = designs.iter().map(|s| s.as_str()).collect();
    header.extend(design_refs.iter());

    let mut speedup = Table::new("Figure 4: speedup normalized to NoCache", &header);
    let mut mpki = Table::new("Figure 4 (dots): DRAM cache MPKI", &header);
    for workload in matrix.workloads() {
        let mut srow = vec![workload.clone()];
        let mut mrow = vec![workload.clone()];
        for design in &designs {
            let p = fig
                .points
                .iter()
                .find(|p| &p.workload == workload && &p.design == design)
                .expect("point exists");
            srow.push(fmt2(p.speedup));
            mrow.push(fmt2(p.mpki));
        }
        speedup.row(srow);
        mpki.row(mrow);
    }
    let mut grow = vec!["geo-mean".to_string()];
    for design in &designs {
        let gm = fig
            .geomean_speedup
            .iter()
            .find(|(d, _)| d == design)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        grow.push(fmt2(gm));
    }
    speedup.row(grow);

    let _ = write_json("fig4_speedup_mpki", &fig);
    vec![speedup, mpki]
}

/// Headline comparisons the paper quotes in Section 5.2 (Banshee vs. the
/// best baselines), computed from the geomeans.
pub fn headline(fig: &Fig4) -> Vec<(String, f64)> {
    let get = |name: &str| {
        fig.geomean_speedup
            .iter()
            .find(|(d, _)| d == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let banshee = get("Banshee");
    let mut out = Vec::new();
    for baseline in ["Unison", "TDC", "Alloy 1", "Alloy 0.1"] {
        let b = get(baseline);
        if b > 0.0 {
            out.push((format!("Banshee vs {baseline}"), banshee / b - 1.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ExperimentScale, Runner};

    #[test]
    fn fig4_builds_from_a_smoke_matrix() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let matrix = runner.run_matrix(
            &banshee_dcache::DramCacheDesign::figure4_lineup(),
            &crate::experiments::sweep_suite()[..2],
        );
        let fig = build(&matrix);
        assert_eq!(
            fig.points.len(),
            matrix.workloads().len() * matrix.designs().len()
        );
        assert_eq!(fig.geomean_speedup.len(), matrix.designs().len());
        // NoCache's speedup over itself is exactly 1.
        for p in fig.points.iter().filter(|p| p.design == "NoCache") {
            assert!((p.speedup - 1.0).abs() < 1e-9);
        }
        let tables = report(&matrix);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        let h = headline(&fig);
        assert!(!h.is_empty());
    }
}
