//! Data-driven scenarios: expand a [`ScenarioSpec`] file into prepared
//! cells, run them through the engine (with full result-store resume) and
//! report tables + JSON exactly like the built-in experiments.
//!
//! Cell keying: each cell's store key is
//! `banshee-scenario-cell-v1|<workload spec content>|<footprint>|<seed>|<full SimConfig material>`,
//! so editing a scenario's semantic content (workload parameters, trace
//! file bytes, overrides, sweep points) re-keys exactly the affected
//! cells, while cosmetic edits (description, reordering) keep the cache
//! warm.

use crate::runner::{PreparedCell, Runner};
use crate::table::{fmt2, fmt_pct, write_json, Table};
use banshee_dcache::DramCacheDesign;
use banshee_sim::SimResult;
use banshee_workloads::{ScenarioSpec, ScenarioWorkloadEntry};
use serde::Serialize;
use std::sync::Arc;

/// One cell of a scenario run, with its sweep coordinates.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioCellResult {
    /// Workload display label.
    pub workload: String,
    /// Design display label.
    pub design: String,
    /// The sweep's footprint factor for this cell.
    pub footprint_factor: f64,
    /// Workload footprint in bytes (after factors/overrides).
    pub footprint_bytes: u64,
    /// The sweep seed.
    pub seed: u64,
    /// Swept DRAM page policy ("open"/"closed"), if the sweep has that axis.
    pub page_policy: Option<String>,
    /// Swept DRAM write-queue depth, if the sweep has that axis.
    pub write_queue_depth: Option<u64>,
    /// Swept frequency-tracking backend label, if the sweep has that axis.
    pub frequency_backend: Option<String>,
    /// The simulation result.
    pub result: SimResult,
}

/// The JSON report written to `target/experiments/scenario_<name>.json`.
/// Deliberately timestamp-free: two runs of the same scenario at the same
/// scale produce byte-identical files (CI diffs them).
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Run scale label ("quick", ...).
    pub scale: String,
    /// All cells, in matrix order (workload-major, then design, factor,
    /// seed).
    pub cells: Vec<ScenarioCellResult>,
}

/// Sweep coordinates of one expanded cell (parallel to its
/// [`PreparedCell`]).
#[derive(Debug, Clone)]
pub struct CellCoords {
    /// Workload display label.
    pub workload: String,
    /// Design display label.
    pub design: String,
    /// Footprint factor.
    pub footprint_factor: f64,
    /// Resolved footprint in bytes.
    pub footprint_bytes: u64,
    /// Sweep seed.
    pub seed: u64,
    /// Swept DRAM page policy, if that axis is present.
    pub page_policy: Option<String>,
    /// Swept DRAM write-queue depth, if that axis is present.
    pub write_queue_depth: Option<u64>,
    /// Swept frequency-tracking backend label, if that axis is present.
    pub frequency_backend: Option<String>,
}

/// Resolve the designs a scenario runs under: its own list, parsed and
/// validated, or the Figure 4 lineup when the list is empty.
pub fn resolve_designs(spec: &ScenarioSpec) -> Result<Vec<DramCacheDesign>, String> {
    if spec.designs.is_empty() {
        return Ok(DramCacheDesign::figure4_lineup());
    }
    spec.designs
        .iter()
        .map(|label| {
            DramCacheDesign::parse(label).ok_or_else(|| {
                format!(
                    "scenario `{}`: unknown design `{label}`; valid designs: {}",
                    spec.name,
                    DramCacheDesign::all_labels().join(", ")
                )
            })
        })
        .collect()
}

fn entry_footprint(entry: &ScenarioWorkloadEntry, cache_capacity_bytes: u64, factor: f64) -> u64 {
    // Workloads with inherent data (trace replays) ignore the sweep's
    // footprint factor: the factor must not fork their store keys or
    // misreport their footprint.
    if let Some(fixed) = entry.spec.fixed_footprint_bytes() {
        return fixed;
    }
    entry
        .footprint_bytes
        .unwrap_or(((cache_capacity_bytes as f64 * factor) as u64).max(4 * 4096))
}

/// Expand the full matrix (workloads × designs × factors × seeds) into
/// prepared cells with scenario-aware store keys.
pub fn expand_cells(
    runner: &Runner,
    spec: &ScenarioSpec,
) -> Result<Vec<(CellCoords, PreparedCell)>, String> {
    let designs = resolve_designs(spec)?;
    // The DRAM axes are optional: an empty list means "one cell with the
    // config's value" (represented as None).
    let page_policies: Vec<Option<banshee_workloads::DramPagePolicyOverride>> =
        if spec.sweep.page_policies.is_empty() {
            vec![None]
        } else {
            spec.sweep.page_policies.iter().map(|&p| Some(p)).collect()
        };
    let wq_depths: Vec<Option<usize>> = if spec.sweep.write_queue_depths.is_empty() {
        vec![None]
    } else {
        spec.sweep
            .write_queue_depths
            .iter()
            .map(|&d| Some(d))
            .collect()
    };
    let freq_backends: Vec<Option<banshee_common::FrequencyBackendKind>> =
        if spec.sweep.frequency_backends.is_empty() {
            vec![None]
        } else {
            spec.sweep
                .frequency_backends
                .iter()
                .map(|&b| Some(b))
                .collect()
        };
    let mut cells = Vec::new();
    for entry in &spec.workloads {
        for design in &designs {
            for &factor in &spec.sweep.footprint_factors {
                for &seed in &spec.sweep.seeds {
                    for &policy in &page_policies {
                        for &depth in &wq_depths {
                            for &backend in &freq_backends {
                                let mut overrides = spec.overrides.clone();
                                if policy.is_some() {
                                    overrides.dram_page_policy = policy;
                                }
                                if depth.is_some() {
                                    overrides.dram_write_queue_depth = depth;
                                }
                                if backend.is_some() {
                                    overrides.frequency_backend = backend;
                                }
                                let mut config = runner.config(*design);
                                config.apply_scenario_overrides(&overrides);
                                config.seed = seed;
                                let footprint = entry_footprint(
                                    entry,
                                    config.dcache.capacity.as_bytes(),
                                    factor,
                                );
                                let instance = entry.spec.instantiate(footprint, seed);
                                let key_material = format!(
                                    "banshee-scenario-cell-v1|{}|{}",
                                    instance.key_material(),
                                    config.cache_key_material()
                                );
                                let coords = CellCoords {
                                    workload: entry.spec.display_name(),
                                    design: config.design.label(),
                                    footprint_factor: factor,
                                    footprint_bytes: footprint,
                                    seed,
                                    page_policy: policy.map(|p| p.label().to_string()),
                                    write_queue_depth: depth.map(|d| d as u64),
                                    frequency_backend: backend.map(|b| b.label()),
                                };
                                cells.push((
                                    coords.clone(),
                                    PreparedCell {
                                        workload_label: coords.workload.clone(),
                                        design_label: coords.design.clone(),
                                        key_material,
                                        // The instance key covers the scenario
                                        // workload's full trace-shaping content,
                                        // so same-named workloads from different
                                        // scenario files never share an image.
                                        workload_ident: instance.key_material(),
                                        config,
                                        factory: Arc::new(instance),
                                    },
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(cells)
}

/// Run one parsed scenario and build its report.
pub fn run(runner: &Runner, spec: &ScenarioSpec) -> Result<ScenarioReport, String> {
    let (coords, prepared): (Vec<CellCoords>, Vec<PreparedCell>) =
        expand_cells(runner, spec)?.into_iter().unzip();
    // A scenario's `telemetry` block parameterizes the recorder but never
    // activates it: only when the harness already runs with telemetry on do
    // the scenario's knobs replace the defaults (on a clone, so the caller's
    // runner is untouched).
    let mut runner = runner.clone();
    if let (Some(options), Some(knobs)) = (runner.telemetry.as_mut(), spec.telemetry.as_ref()) {
        if let Some(interval) = knobs.interval_instructions {
            options.config.interval_instructions = interval;
        }
        if let Some(samples) = knobs.max_samples {
            options.config.max_samples = samples;
        }
        if let Some(events) = knobs.max_events {
            options.config.max_events = events;
        }
    }
    let runner = &runner;
    let results = runner.run_prepared(prepared);
    let cells = coords
        .into_iter()
        .zip(results)
        .map(|(c, result)| ScenarioCellResult {
            workload: c.workload,
            design: c.design,
            footprint_factor: c.footprint_factor,
            footprint_bytes: c.footprint_bytes,
            seed: c.seed,
            page_policy: c.page_policy,
            write_queue_depth: c.write_queue_depth,
            frequency_backend: c.frequency_backend,
            result,
        })
        .collect();
    Ok(ScenarioReport {
        scenario: spec.name.clone(),
        description: spec.description.clone(),
        scale: runner.scale.name().to_string(),
        cells,
    })
}

/// Render a report as a table (one row per cell).
pub fn tables(report: &ScenarioReport) -> Vec<Table> {
    let multi_factor = report
        .cells
        .iter()
        .any(|c| c.footprint_factor != report.cells[0].footprint_factor);
    let multi_seed = report.cells.iter().any(|c| c.seed != report.cells[0].seed);
    let mut t = Table::new(
        &format!("Scenario: {} ({} scale)", report.scenario, report.scale),
        &[
            "workload",
            "design",
            "factor",
            "seed",
            "page",
            "wq",
            "freq",
            "IPC",
            "MPKI",
            "miss rate",
            "in-pkg B/i",
            "off-pkg B/i",
        ],
    );
    for c in &report.cells {
        t.row(vec![
            c.workload.clone(),
            c.design.clone(),
            if multi_factor || c.footprint_factor != 4.0 {
                format!("{}", c.footprint_factor)
            } else {
                "-".to_string()
            },
            if multi_seed {
                format!("{}", c.seed)
            } else {
                "-".to_string()
            },
            c.page_policy.clone().unwrap_or_else(|| "-".to_string()),
            c.write_queue_depth
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
            c.frequency_backend
                .clone()
                .unwrap_or_else(|| "-".to_string()),
            fmt2(c.result.ipc()),
            fmt2(c.result.mpki()),
            fmt_pct(c.result.dram_cache_miss_rate()),
            fmt2(
                c.result
                    .total_bytes_per_instr(banshee_common::DramKind::InPackage),
            ),
            fmt2(
                c.result
                    .total_bytes_per_instr(banshee_common::DramKind::OffPackage),
            ),
        ]);
    }
    vec![t]
}

/// Run a parsed scenario, persist its JSON report (to
/// `target/experiments/scenario_<name>.json`) and return its tables.
pub fn run_and_report(runner: &Runner, spec: &ScenarioSpec) -> Result<Vec<Table>, String> {
    let report = run(runner, spec)?;
    write_json(&format!("scenario_{}", report.scenario), &report)
        .map_err(|e| format!("failed to write scenario JSON: {e}"))?;
    Ok(tables(&report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use std::path::PathBuf;

    fn smoke_spec(json: &str) -> ScenarioSpec {
        ScenarioSpec::from_json_str(json, &PathBuf::from(".")).expect("spec parses")
    }

    #[test]
    fn expansion_covers_the_matrix() {
        let spec = smoke_spec(
            r#"{
            "name": "m",
            "workloads": [{"type": "builtin", "name": "gcc"},
                          {"type": "kv", "name": "kvx"}],
            "designs": ["NoCache", "Banshee"],
            "sweep": {"footprint_factors": [2, 4], "seeds": [1, 2]}
        }"#,
        );
        let runner = Runner::new(ExperimentScale::Smoke);
        let cells = expand_cells(&runner, &spec).unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // Keys are pairwise distinct across the matrix.
        let mut keys: Vec<&str> = cells.iter().map(|(_, p)| p.key_material.as_str()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 16);
        // Footprint scales with the factor and the seed lands in the config.
        let (c0, p0) = &cells[0];
        assert_eq!(c0.footprint_bytes, p0.config.dcache.capacity.as_bytes() * 2);
        assert_eq!(p0.config.seed, c0.seed);
    }

    #[test]
    fn frequency_backend_axis_expands_and_rekeys() {
        let spec = smoke_spec(
            r#"{
            "name": "m",
            "workloads": [{"type": "builtin", "name": "gcc"}],
            "designs": ["Banshee"],
            "sweep": {"frequency_backends": ["exact", "cms:4096x4"]}
        }"#,
        );
        let runner = Runner::new(ExperimentScale::Smoke);
        let cells = expand_cells(&runner, &spec).unwrap();
        assert_eq!(cells.len(), 2);
        assert_ne!(cells[0].1.key_material, cells[1].1.key_material);
        assert_eq!(cells[0].0.frequency_backend.as_deref(), Some("exact"));
        assert_eq!(cells[1].0.frequency_backend.as_deref(), Some("cms:4096x4"));
        // The explicit "exact" sweep point keys identically to a scenario
        // that never mentions the knob: both are the same simulation.
        let plain = smoke_spec(
            r#"{"name": "m", "workloads": [{"type": "builtin", "name": "gcc"}],
                "designs": ["Banshee"]}"#,
        );
        let plain_cells = expand_cells(&runner, &plain).unwrap();
        assert_eq!(plain_cells[0].1.key_material, cells[0].1.key_material);
        assert_eq!(plain_cells[0].0.frequency_backend, None);
    }

    #[test]
    fn unknown_design_is_an_actionable_error() {
        let spec = smoke_spec(
            r#"{"name": "m", "designs": ["Banshee", "Warp"],
                "workloads": [{"type": "builtin", "name": "gcc"}]}"#,
        );
        let e = resolve_designs(&spec).unwrap_err();
        assert!(e.contains("Warp") && e.contains("valid designs"), "{e}");
    }

    #[test]
    fn empty_designs_fall_back_to_figure4_lineup() {
        let spec =
            smoke_spec(r#"{"name": "m", "workloads": [{"type": "builtin", "name": "gcc"}]}"#);
        assert_eq!(
            resolve_designs(&spec).unwrap(),
            DramCacheDesign::figure4_lineup()
        );
    }

    #[test]
    fn overrides_reach_the_cell_configs() {
        let spec = smoke_spec(
            r#"{"name": "m", "designs": ["Banshee"],
                "workloads": [{"type": "builtin", "name": "gcc"}],
                "config": {"cores": 2, "total_instructions": 50000}}"#,
        );
        let runner = Runner::new(ExperimentScale::Smoke);
        let cells = expand_cells(&runner, &spec).unwrap();
        assert_eq!(cells[0].1.config.cores, 2);
        assert_eq!(cells[0].1.config.total_instructions, 50_000);
    }

    #[test]
    fn scenario_runs_end_to_end_at_smoke_scale() {
        let spec = smoke_spec(
            r#"{"name": "smoke-run",
                "workloads": [{"type": "kv", "name": "kvz", "zipf_exponent": 1.0}],
                "designs": ["NoCache", "Banshee"],
                "config": {"cores": 2, "total_instructions": 60000,
                           "warmup_instructions": 30000}}"#,
        );
        let runner = Runner::new(ExperimentScale::Smoke);
        let report = run(&runner, &spec).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.result.instructions > 0);
            assert!(cell.result.ipc() > 0.0);
        }
        let t = tables(&report);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].len(), 2);
    }
}
