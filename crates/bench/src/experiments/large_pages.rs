//! Section 5.4.1: Banshee with 2 MiB large pages on the graph workloads.
//!
//! The paper assumes all data lives on large pages, uses a sampling
//! coefficient of 0.001 (so the 5-bit counters do not saturate instantly on
//! 32768-line pages) and reports an average speedup of a few percent over
//! regular 4 KiB pages, with perfect TLBs so only the DRAM-subsystem effect
//! is visible.

use crate::runner::Runner;
use crate::table::{fmt2, write_json, Table};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One workload's comparison.
#[derive(Debug, Clone, Serialize)]
pub struct LargePageRow {
    /// Workload label.
    pub workload: String,
    /// IPC with regular 4 KiB pages.
    pub ipc_4k: f64,
    /// IPC with 2 MiB pages.
    pub ipc_2m: f64,
    /// Relative speedup of large pages over 4 KiB pages.
    pub speedup: f64,
}

/// Run the comparison over the graph suite (or any provided workloads).
/// Both page-size variants of every workload go through the execution
/// engine as one batch.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<LargePageRow> {
    let cells: Vec<_> = workloads
        .iter()
        .flat_map(|&w| {
            let base_cfg = runner.config(DramCacheDesign::Banshee);
            let mut lp_cfg = runner.config(DramCacheDesign::Banshee);
            lp_cfg.large_pages = true;
            // Perfect TLBs, as in the paper's large-page study: the
            // comparison isolates the DRAM-subsystem effect.
            lp_cfg.tlb_miss_latency = 0;
            [(base_cfg, w), (lp_cfg, w)]
        })
        .collect();
    let mut results = runner.run_batch(cells).into_iter();

    let mut rows = Vec::new();
    for &w in workloads {
        let base = results.next().expect("4 KiB cell");
        let lp = results.next().expect("2 MiB cell");

        rows.push(LargePageRow {
            workload: w.name(),
            ipc_4k: base.ipc(),
            ipc_2m: lp.ipc(),
            speedup: if base.ipc() > 0.0 {
                lp.ipc() / base.ipc()
            } else {
                0.0
            },
        });
    }
    rows
}

/// Print and persist the study.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let rows = run(runner, workloads);
    let mut t = Table::new(
        "Section 5.4.1: Banshee with 2 MiB large pages (graph workloads)",
        &["workload", "IPC 4KiB", "IPC 2MiB", "speedup"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            fmt2(r.ipc_4k),
            fmt2(r.ipc_2m),
            fmt2(r.speedup),
        ]);
    }
    let mean = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len().max(1) as f64;
    t.row(vec![
        "average".to_string(),
        String::new(),
        String::new(),
        fmt2(mean),
    ]);
    let _ = write_json("large_pages", &rows);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::{GraphKernel, WorkloadKind};

    #[test]
    fn large_pages_run_and_stay_in_a_sane_band() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Graph(GraphKernel::PageRank)];
        let rows = run(&runner, &workloads);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.ipc_4k > 0.0 && r.ipc_2m > 0.0);
        // Large pages should not be catastrophically worse (the paper finds
        // them slightly better). At smoke scale the tiny cache holds only a
        // handful of 2 MiB units, which can exaggerate the effect in either
        // direction, so the band here is deliberately wide; the quantitative
        // comparison happens at standard scale in EXPERIMENTS.md.
        assert!(
            r.speedup > 0.2 && r.speedup < 5.0,
            "large-page speedup out of band: {}",
            r.speedup
        );
    }
}
