//! Figure 8: sensitivity of each design to DRAM-cache latency (b) and
//! bandwidth (c).
//!
//! The latency sweep scales the in-package DRAM access latency to 100%, 66%
//! and 50% of the off-package latency; the bandwidth sweep gives the
//! in-package DRAM 8×, 4× and 2× the off-package bandwidth (by channel
//! count). Each point is the geometric-mean speedup over the sweep suite,
//! normalized to NoCache.

use crate::runner::Runner;
use crate::table::{fmt2, write_json, Table};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Point {
    /// Design label.
    pub design: String,
    /// Sweep-parameter label ("100%", "8X", ...).
    pub setting: String,
    /// Geometric-mean speedup over NoCache (at the default setting).
    pub speedup: f64,
}

/// Both panels of the figure.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Fig8 {
    /// Panel (b): latency sweep.
    pub latency: Vec<Fig8Point>,
    /// Panel (c): bandwidth sweep.
    pub bandwidth: Vec<Fig8Point>,
}

/// The designs plotted in Figure 8.
pub fn lineup() -> Vec<DramCacheDesign> {
    vec![
        DramCacheDesign::Banshee,
        DramCacheDesign::Alloy {
            fill_probability: 0.1,
        },
        DramCacheDesign::Tdc,
        DramCacheDesign::Unison,
    ]
}

/// Run both sweeps.
///
/// Every cell of both panels (plus the per-workload NoCache baselines) is
/// submitted as one batch through the execution engine, then sliced back
/// into (setting, design) groups in submission order.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Fig8 {
    const LATENCIES: [(&str, f64); 3] = [("100%", 1.0), ("66%", 0.66), ("50%", 0.5)];
    const BANDWIDTHS: [(&str, usize); 3] = [("8X", 8), ("4X", 4), ("2X", 2)];

    let mut cells = Vec::new();
    // Baselines: NoCache at the default setting, one result per workload.
    for &w in workloads {
        cells.push((runner.config(DramCacheDesign::NoCache), w));
    }
    // Panel (b): latency scale 100% / 66% / 50%.
    for (_, scale) in LATENCIES {
        for design in lineup() {
            for &w in workloads {
                cells.push((
                    runner.config(design).with_dram_cache_latency_scale(scale),
                    w,
                ));
            }
        }
    }
    // Panel (c): bandwidth ratio 8× / 4× / 2×.
    for (_, channels) in BANDWIDTHS {
        for design in lineup() {
            for &w in workloads {
                cells.push((
                    runner
                        .config(design)
                        .with_dram_cache_bandwidth_ratio(channels),
                    w,
                ));
            }
        }
    }

    let mut results = runner.run_batch(cells).into_iter();
    let mut baseline = std::collections::HashMap::new();
    for &w in workloads {
        baseline.insert(w.name(), results.next().expect("baseline cell"));
    }
    let geomean_speedup = |results: &[banshee_sim::SimResult]| -> f64 {
        let vals: Vec<f64> = results
            .iter()
            .map(|r| r.speedup_over(&baseline[&r.workload]))
            .filter(|v| *v > 0.0)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
        }
    };

    let mut fig = Fig8::default();
    for (label, _) in LATENCIES {
        for design in lineup() {
            let group: Vec<_> = workloads
                .iter()
                .map(|_| results.next().expect("latency cell"))
                .collect();
            fig.latency.push(Fig8Point {
                design: design.label(),
                setting: label.to_string(),
                speedup: geomean_speedup(&group),
            });
        }
    }
    for (label, _) in BANDWIDTHS {
        for design in lineup() {
            let group: Vec<_> = workloads
                .iter()
                .map(|_| results.next().expect("bandwidth cell"))
                .collect();
            fig.bandwidth.push(Fig8Point {
                design: design.label(),
                setting: label.to_string(),
                speedup: geomean_speedup(&group),
            });
        }
    }
    fig
}

/// Print and persist both panels.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let fig = run(runner, workloads);
    let mut lat = Table::new(
        "Figure 8(b): speedup vs DRAM cache latency (geo-mean, norm. to NoCache)",
        &["design", "100%", "66%", "50%"],
    );
    let mut bw = Table::new(
        "Figure 8(c): speedup vs DRAM cache bandwidth (geo-mean, norm. to NoCache)",
        &["design", "8X", "4X", "2X"],
    );
    for design in lineup() {
        let label = design.label();
        let pick = |points: &[Fig8Point], setting: &str| {
            points
                .iter()
                .find(|p| p.design == label && p.setting == setting)
                .map(|p| p.speedup)
                .unwrap_or(0.0)
        };
        lat.row(vec![
            label.clone(),
            fmt2(pick(&fig.latency, "100%")),
            fmt2(pick(&fig.latency, "66%")),
            fmt2(pick(&fig.latency, "50%")),
        ]);
        bw.row(vec![
            label.clone(),
            fmt2(pick(&fig.bandwidth, "8X")),
            fmt2(pick(&fig.bandwidth, "4X")),
            fmt2(pick(&fig.bandwidth, "2X")),
        ]);
    }
    let _ = write_json("fig8_latency_bandwidth_sweep", &fig);
    vec![lat, bw]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::SpecProgram;

    #[test]
    fn bandwidth_sweep_is_monotonic_for_banshee() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Spec(SpecProgram::Mcf)];
        let fig = run(&runner, &workloads);
        let pick = |setting: &str| {
            fig.bandwidth
                .iter()
                .find(|p| p.design == "Banshee" && p.setting == setting)
                .unwrap()
                .speedup
        };
        // More in-package bandwidth can only help (within noise).
        assert!(
            pick("8X") >= pick("2X") * 0.95,
            "8X {} vs 2X {}",
            pick("8X"),
            pick("2X")
        );
        assert_eq!(fig.latency.len(), 3 * lineup().len());
        assert_eq!(fig.bandwidth.len(), 3 * lineup().len());
    }
}
