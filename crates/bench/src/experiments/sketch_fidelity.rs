//! Sketch-vs-exact fidelity: how narrow can the CountMinSketch frequency
//! backend get before it changes what the simulator *concludes*?
//!
//! Every design runs the same workloads once with the exact backend and
//! once per swept sketch width. Two fidelity signals are reported per
//! width:
//!
//! * **cell divergence** — the number of (design, workload) cells whose
//!   `SimResult` differs at all from the exact backend's (replacement and
//!   migration decisions feed timing, so any decision flip shows up here);
//! * **ordering divergence** — whether the Figure 4 geo-mean speedup
//!   ordering over the non-baseline designs still matches the exact
//!   backend's ordering (at quick scale: TDC < Banshee < CacheOnly).
//!
//! The headline number is the widest sketch at which the geo-mean ordering
//! breaks: above it the sketch is a safe drop-in for ranking designs.

use crate::runner::Runner;
use crate::table::{fmt2, write_json, Table};
use banshee_common::FrequencyBackendKind;
use banshee_dcache::DramCacheDesign;
use banshee_sim::SimResult;
use banshee_workloads::WorkloadKind;
use serde::Serialize;
use std::collections::HashMap;

/// Sketch widths swept by default, widest (most faithful) first. Depth is
/// fixed at [`DEPTH`]; at 4-bit counters a width-`w` sketch costs
/// `w / 2` bytes per row.
pub const WIDTHS: [u32; 4] = [16384, 4096, 1024, 256];

/// Sketch depth (hash rows) used for every swept width.
pub const DEPTH: u32 = 4;

/// The designs whose geo-mean ordering the experiment guards. NoCache is
/// the speedup baseline; it and CacheOnly never consult the frequency
/// tracker, so their per-backend results double as a purity control (they
/// must never diverge).
pub fn lineup() -> Vec<DramCacheDesign> {
    vec![
        DramCacheDesign::NoCache,
        DramCacheDesign::CacheOnly,
        DramCacheDesign::Tdc,
        DramCacheDesign::Banshee,
    ]
}

/// Fidelity of one backend against the exact reference.
#[derive(Debug, Clone, Serialize)]
pub struct BackendFidelity {
    /// Backend label ("exact" or "cms:<width>x<depth>").
    pub backend: String,
    /// Sketch width (None for the exact reference row).
    pub width: Option<u32>,
    /// Geo-mean speedup over NoCache, per design (lineup order, baseline
    /// excluded).
    pub geomean_speedup: Vec<(String, f64)>,
    /// Non-baseline designs sorted by ascending geo-mean speedup.
    pub ordering: Vec<String>,
    /// True if `ordering` matches the exact backend's.
    pub ordering_matches_exact: bool,
    /// Number of (design, workload) cells whose result differs from the
    /// exact backend's result for the same cell.
    pub diverging_cells: usize,
    /// Largest relative IPC deviation from the exact backend over all
    /// cells, as a fraction (0.03 = 3%).
    pub max_rel_ipc_delta: f64,
}

/// The full experiment.
#[derive(Debug, Clone, Serialize, Default)]
pub struct SketchFidelity {
    /// Workload labels.
    pub workloads: Vec<String>,
    /// Design labels (lineup order; first is the speedup baseline).
    pub designs: Vec<String>,
    /// One row per backend; the exact reference first, then widths
    /// descending.
    pub backends: Vec<BackendFidelity>,
    /// The widest swept width whose geo-mean ordering differs from the
    /// exact backend's (None: every width preserves the ordering).
    pub first_diverging_width: Option<u32>,
}

fn geomean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        0.0
    } else {
        (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
    }
}

/// Run the sweep: every (backend, design, workload) cell goes through the
/// engine as one batch (store-resumable like any other experiment).
pub fn run(runner: &Runner, workloads: &[WorkloadKind], widths: &[u32]) -> SketchFidelity {
    let designs = lineup();
    let backends: Vec<FrequencyBackendKind> = std::iter::once(FrequencyBackendKind::Exact)
        .chain(widths.iter().map(|&width| FrequencyBackendKind::Cms {
            width,
            depth: DEPTH,
        }))
        .collect();

    let mut cells = Vec::new();
    for &backend in &backends {
        for &design in &designs {
            for &workload in workloads {
                let mut cfg = runner.config(design);
                cfg.frequency_backend = backend;
                cells.push((cfg, workload));
            }
        }
    }
    let mut results = runner.run_batch(cells).into_iter();
    // (backend label, design label, workload label) -> result.
    let mut by_cell: HashMap<(String, String, String), SimResult> = HashMap::new();
    for &backend in &backends {
        for &design in &designs {
            for &workload in workloads {
                by_cell.insert(
                    (backend.label(), design.label(), workload.name()),
                    results.next().expect("one result per cell"),
                );
            }
        }
    }

    let baseline = designs[0].label();
    let ranked: Vec<String> = designs.iter().skip(1).map(|d| d.label()).collect();
    let mut fidelity = SketchFidelity {
        workloads: workloads.iter().map(|w| w.name()).collect(),
        designs: designs.iter().map(|d| d.label()).collect(),
        ..SketchFidelity::default()
    };
    let mut exact_ordering: Vec<String> = Vec::new();
    for &backend in &backends {
        let label = backend.label();
        let cell = |design: &str, workload: &str| {
            by_cell
                .get(&(label.clone(), design.to_string(), workload.to_string()))
                .expect("full matrix")
        };
        let mut geomean_speedup = Vec::new();
        for design in &ranked {
            let speedups: Vec<f64> = fidelity
                .workloads
                .iter()
                .map(|w| cell(design, w).speedup_over(cell(&baseline, w)))
                .collect();
            geomean_speedup.push((design.clone(), geomean(&speedups)));
        }
        let mut ordering = geomean_speedup.clone();
        ordering.sort_by(|a, b| a.1.total_cmp(&b.1));
        let ordering: Vec<String> = ordering.into_iter().map(|(d, _)| d).collect();
        if backend == FrequencyBackendKind::Exact {
            exact_ordering = ordering.clone();
        }

        let mut diverging_cells = 0usize;
        let mut max_rel_ipc_delta = 0.0f64;
        for design in &fidelity.designs {
            for w in &fidelity.workloads {
                let exact = by_cell
                    .get(&("exact".to_string(), design.clone(), w.clone()))
                    .expect("exact reference");
                let this = cell(design, w);
                let exact_json = serde_json::to_string(exact).expect("serializable");
                let this_json = serde_json::to_string(this).expect("serializable");
                if exact_json != this_json {
                    diverging_cells += 1;
                }
                if exact.ipc() > 0.0 {
                    let delta = (this.ipc() - exact.ipc()).abs() / exact.ipc();
                    max_rel_ipc_delta = max_rel_ipc_delta.max(delta);
                }
            }
        }

        let width = match backend {
            FrequencyBackendKind::Exact => None,
            FrequencyBackendKind::Cms { width, .. } => Some(width),
        };
        let ordering_matches_exact = ordering == exact_ordering;
        if let (Some(width), false, None) =
            (width, ordering_matches_exact, fidelity.first_diverging_width)
        {
            fidelity.first_diverging_width = Some(width);
        }
        fidelity.backends.push(BackendFidelity {
            backend: label,
            width,
            geomean_speedup,
            ordering,
            ordering_matches_exact,
            diverging_cells,
            max_rel_ipc_delta,
        });
    }
    fidelity
}

/// Print and persist the experiment.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let fidelity = run(runner, workloads, &WIDTHS);
    let mut header: Vec<String> = vec!["backend".to_string()];
    for (design, _) in &fidelity.backends[0].geomean_speedup {
        header.push(format!("gm {design}"));
    }
    header.extend(["ordering ok", "divergent cells", "max IPC delta"].map(String::from));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Sketch fidelity: CountMinSketch vs exact frequency tracking",
        &header_refs,
    );
    for b in &fidelity.backends {
        let mut row = vec![b.backend.clone()];
        row.extend(b.geomean_speedup.iter().map(|(_, gm)| fmt2(*gm)));
        row.push(if b.ordering_matches_exact { "yes" } else { "NO" }.to_string());
        row.push(b.diverging_cells.to_string());
        row.push(format!("{:.2}%", b.max_rel_ipc_delta * 100.0));
        t.row(row);
    }
    let _ = write_json("sketch_fidelity", &fidelity);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::SpecProgram;

    #[test]
    fn exact_reference_never_diverges_from_itself() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Spec(SpecProgram::Mcf)];
        let fidelity = run(&runner, &workloads, &[1024]);
        assert_eq!(fidelity.backends.len(), 2);
        let exact = &fidelity.backends[0];
        assert_eq!(exact.backend, "exact");
        assert_eq!(exact.diverging_cells, 0);
        assert!(exact.ordering_matches_exact);
        assert_eq!(exact.max_rel_ipc_delta, 0.0);
        // Designs that never consult the tracker are byte-identical under
        // the sketch: divergence can only come from tracker users, so it is
        // bounded by their cell count.
        let sketch = &fidelity.backends[1];
        assert_eq!(sketch.backend, "cms:1024x4");
        assert_eq!(sketch.width, Some(1024));
        assert!(
            sketch.diverging_cells <= 2 * workloads.len(),
            "only TDC and Banshee consult the tracker, got {} divergent cells",
            sketch.diverging_cells
        );
        // Speedups are real numbers for every backend.
        for b in &fidelity.backends {
            for (_, gm) in &b.geomean_speedup {
                assert!(*gm > 0.0);
            }
        }
    }
}
