//! Figure 9: sweeping Banshee's sampling coefficient (1, 0.1, 0.01) —
//! DRAM-cache miss rate (a) and DRAM-cache traffic breakdown (b).

use crate::runner::Runner;
use crate::table::{fmt2, fmt_pct, write_json, Table};
use banshee::BansheeConfig;
use banshee_common::{DramKind, TrafficClass};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::WorkloadKind;
use serde::Serialize;

/// One sampling-coefficient setting.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Point {
    /// The sampling coefficient.
    pub coefficient: f64,
    /// Mean DRAM-cache miss rate over the suite.
    pub miss_rate: f64,
    /// Mean in-package traffic by class (bytes/instruction).
    pub hit_data: f64,
    /// Miss / speculative data bytes per instruction.
    pub miss_data: f64,
    /// Tag bytes per instruction.
    pub tag: f64,
    /// Frequency-counter bytes per instruction.
    pub counter: f64,
    /// Replacement bytes per instruction.
    pub replacement: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Fig9 {
    /// One point per swept coefficient.
    pub points: Vec<Fig9Point>,
}

/// The coefficients the paper sweeps.
pub const COEFFICIENTS: [f64; 3] = [1.0, 0.1, 0.01];

/// Run the sweep. All (coefficient, workload) cells go through the
/// execution engine as one batch.
pub fn run(runner: &Runner, workloads: &[WorkloadKind]) -> Fig9 {
    let cells: Vec<_> = COEFFICIENTS
        .iter()
        .flat_map(|&coeff| {
            workloads.iter().map(move |&w| {
                let mut cfg = runner.config(DramCacheDesign::Banshee);
                cfg.banshee = Some(BansheeConfig {
                    sampling_coefficient: coeff,
                    ..BansheeConfig::from_dcache(&cfg.dcache)
                });
                (cfg, w)
            })
        })
        .collect();
    let mut results = runner.run_batch(cells).into_iter();

    let mut fig = Fig9::default();
    for &coeff in &COEFFICIENTS {
        let mut miss_rates = Vec::new();
        let mut per_class = vec![0.0f64; TrafficClass::ALL.len()];
        for _ in workloads {
            let r = results.next().expect("sweep cell");
            miss_rates.push(r.dram_cache_miss_rate());
            for (i, &c) in TrafficClass::ALL.iter().enumerate() {
                per_class[i] += r.bytes_per_instr(DramKind::InPackage, c);
            }
        }
        let n = workloads.len().max(1) as f64;
        let class = |c: TrafficClass| per_class[c.index()] / n;
        fig.points.push(Fig9Point {
            coefficient: coeff,
            miss_rate: miss_rates.iter().sum::<f64>() / n,
            hit_data: class(TrafficClass::HitData),
            miss_data: class(TrafficClass::MissData),
            tag: class(TrafficClass::Tag),
            counter: class(TrafficClass::Counter),
            replacement: class(TrafficClass::Replacement),
        });
    }
    fig
}

/// Print and persist the figure.
pub fn report(runner: &Runner, workloads: &[WorkloadKind]) -> Vec<Table> {
    let fig = run(runner, workloads);
    let mut t = Table::new(
        "Figure 9: sampling-coefficient sweep (means over suite)",
        &[
            "coefficient",
            "miss rate",
            "HitData",
            "MissData",
            "Tag",
            "Counter",
            "Replace",
        ],
    );
    for p in &fig.points {
        t.row(vec![
            format!("{}", p.coefficient),
            fmt_pct(p.miss_rate),
            fmt2(p.hit_data),
            fmt2(p.miss_data),
            fmt2(p.tag),
            fmt2(p.counter),
            fmt2(p.replacement),
        ]);
    }
    let _ = write_json("fig9_sampling_sweep", &fig);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;
    use banshee_workloads::SpecProgram;

    #[test]
    fn lower_sampling_means_less_counter_traffic() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let workloads = [WorkloadKind::Spec(SpecProgram::Mcf)];
        let fig = run(&runner, &workloads);
        assert_eq!(fig.points.len(), 3);
        let full = &fig.points[0]; // coefficient 1.0
        let low = &fig.points[2]; // coefficient 0.01
        assert!(
            low.counter < full.counter,
            "counter traffic must drop with the sampling coefficient ({} vs {})",
            low.counter,
            full.counter
        );
        // Miss rates are valid fractions at any scale. (The paper's finding
        // that the miss rate rises only slightly as the coefficient drops
        // needs runs long enough for the 0.01 configuration to warm up; that
        // comparison is made at standard scale in EXPERIMENTS.md, not in this
        // smoke test.)
        for p in &fig.points {
            assert!((0.0..=1.0).contains(&p.miss_rate));
        }
    }
}
