//! Figure 6: off-package DRAM traffic (bytes per instruction) for every
//! workload and design.

use crate::runner::MatrixResults;
use crate::table::{fmt2, write_json, Table};
use banshee_common::DramKind;
use serde::Serialize;

/// One bar of Figure 6.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Bar {
    /// Workload label.
    pub workload: String,
    /// Design label.
    pub design: String,
    /// Total off-package bytes per instruction.
    pub bytes_per_instr: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Fig6 {
    /// One bar per (workload, design).
    pub bars: Vec<Fig6Bar>,
    /// Per-design average (the "average" group of the figure).
    pub average: Vec<(String, f64)>,
}

/// Build Figure 6 from the main matrix.
pub fn build(matrix: &MatrixResults) -> Fig6 {
    let mut fig = Fig6::default();
    for workload in matrix.workloads() {
        for design in matrix.designs() {
            // The paper's Figure 6 plots the cache designs (NoCache and
            // CacheOnly are the trivial all-off-package / no-off-package
            // endpoints).
            if design == "NoCache" || design == "CacheOnly" {
                continue;
            }
            let r = matrix.get(workload, design).expect("full matrix");
            fig.bars.push(Fig6Bar {
                workload: workload.clone(),
                design: design.clone(),
                bytes_per_instr: r.total_bytes_per_instr(DramKind::OffPackage),
            });
        }
    }
    for design in matrix.designs() {
        if design == "NoCache" || design == "CacheOnly" {
            continue;
        }
        fig.average.push((
            design.clone(),
            matrix.mean(design, |r| r.total_bytes_per_instr(DramKind::OffPackage)),
        ));
    }
    fig
}

/// Print the figure and write its JSON.
pub fn report(matrix: &MatrixResults) -> Vec<Table> {
    let fig = build(matrix);
    let designs: Vec<String> = fig.average.iter().map(|(d, _)| d.clone()).collect();
    let mut header: Vec<&str> = vec!["workload"];
    header.extend(designs.iter().map(|s| s.as_str()));
    let mut t = Table::new(
        "Figure 6: off-package DRAM traffic (bytes per instruction)",
        &header,
    );
    for workload in matrix.workloads() {
        let mut row = vec![workload.clone()];
        for design in &designs {
            let v = fig
                .bars
                .iter()
                .find(|b| &b.workload == workload && &b.design == design)
                .map(|b| b.bytes_per_instr)
                .unwrap_or(0.0);
            row.push(fmt2(v));
        }
        t.row(row);
    }
    let mut avg_row = vec!["average".to_string()];
    for design in &designs {
        let v = fig
            .average
            .iter()
            .find(|(d, _)| d == design)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        avg_row.push(fmt2(v));
    }
    t.row(avg_row);
    let _ = write_json("fig6_off_package_traffic", &fig);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ExperimentScale, Runner};
    use banshee_dcache::DramCacheDesign;
    use banshee_workloads::{SpecProgram, WorkloadKind};

    #[test]
    fn off_package_traffic_reported_per_design() {
        let runner = Runner::new(ExperimentScale::Smoke);
        let matrix = runner.run_matrix(
            &[
                DramCacheDesign::NoCache,
                DramCacheDesign::Unison,
                DramCacheDesign::Banshee,
            ],
            &[WorkloadKind::Spec(SpecProgram::Lbm)],
        );
        let fig = build(&matrix);
        assert_eq!(fig.bars.len(), 2, "NoCache excluded");
        // Unison replaces on every miss at footprint granularity, so its
        // off-package traffic should not be lower than Banshee's on a
        // streaming workload.
        let unison = fig.bars.iter().find(|b| b.design == "Unison").unwrap();
        let banshee = fig.bars.iter().find(|b| b.design == "Banshee").unwrap();
        assert!(unison.bytes_per_instr > 0.0 && banshee.bytes_per_instr > 0.0);
        let tables = report(&matrix);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 2);
    }
}
