//! Integration tests for the scenario subsystem: the shipped example files
//! must stay valid, and scenario runs must resume fully from the result
//! store with byte-identical results (the property the CI `scenarios` job
//! enforces at quick scale).

use banshee_bench::experiments::scenario;
use banshee_bench::runner::{ExperimentScale, Runner};
use banshee_workloads::ScenarioSpec;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "banshee_bench_scenario_test_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every shipped example scenario must parse, resolve its designs and
/// expand a non-empty matrix. This is what keeps `examples/scenarios/`
/// from rotting as the schema evolves.
#[test]
fn shipped_example_scenarios_are_valid() {
    let dir = examples_dir();
    let mut found = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        found += 1;
        let spec = ScenarioSpec::from_file(&path)
            .unwrap_or_else(|e| panic!("{} must stay valid: {e}", path.display()));
        let runner = Runner::new(ExperimentScale::Smoke);
        let cells = scenario::expand_cells(&runner, &spec)
            .unwrap_or_else(|e| panic!("{} designs must resolve: {e}", path.display()));
        assert!(
            !cells.is_empty(),
            "{} expands to an empty matrix",
            path.display()
        );
    }
    assert!(
        found >= 3,
        "expected at least 3 example scenarios, found {found}"
    );
}

/// Cold run simulates, warm run resumes every cell, and the reports
/// serialize byte-identically — the whole subsystem is deterministic and
/// store-keyed correctly.
#[test]
fn scenario_runs_resume_from_the_store_byte_identically() {
    let json = r#"{
        "name": "resume",
        "workloads": [
            {"type": "kv", "name": "kvr", "zipf_exponent": 1.0},
            {"type": "phased", "name": "phr", "phase_accesses": 20000,
             "tenants": [{"like": "mcf", "share": 0.5}, {"like": "lbm", "share": 0.5}]}
        ],
        "designs": ["NoCache", "Banshee"],
        "config": {"cores": 2, "total_instructions": 60000, "warmup_instructions": 30000}
    }"#;
    let spec = ScenarioSpec::from_json_str(json, Path::new(".")).unwrap();
    let dir = temp_store_dir("resume");

    let cold = Runner::new(ExperimentScale::Smoke)
        .with_jobs(4)
        .with_store(&dir);
    let cold_report = scenario::run(&cold, &spec).unwrap();
    assert_eq!(cold.counters.simulated(), 4);
    assert_eq!(cold.counters.from_store(), 0);

    let warm = Runner::new(ExperimentScale::Smoke)
        .with_jobs(4)
        .with_store(&dir);
    let warm_report = scenario::run(&warm, &spec).unwrap();
    assert_eq!(
        warm.counters.simulated(),
        0,
        "warm run must resume every cell from the store"
    );
    assert_eq!(warm.counters.from_store(), 4);

    let cold_json = serde_json::to_string_pretty(&cold_report).unwrap();
    let warm_json = serde_json::to_string_pretty(&warm_report).unwrap();
    assert_eq!(cold_json, warm_json, "reports must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Editing a scenario's semantics re-keys exactly the changed cells;
/// cosmetic edits keep the cache warm.
#[test]
fn store_keys_track_semantic_content_only() {
    let dir = temp_store_dir("rekey");
    let runner = Runner::new(ExperimentScale::Smoke)
        .with_jobs(2)
        .with_store(&dir);
    let base = r#"{
        "name": "keys", "description": "A",
        "workloads": [{"type": "kv", "name": "kvk", "zipf_exponent": 1.0}],
        "designs": ["NoCache"],
        "config": {"cores": 2, "total_instructions": 40000, "warmup_instructions": 20000}
    }"#;
    let spec = ScenarioSpec::from_json_str(base, Path::new(".")).unwrap();
    scenario::run(&runner, &spec).unwrap();
    assert_eq!(runner.counters.simulated(), 1);

    // Cosmetic change (description): still warm.
    let cosmetic = base.replace("\"description\": \"A\"", "\"description\": \"B\"");
    let spec2 = ScenarioSpec::from_json_str(&cosmetic, Path::new(".")).unwrap();
    scenario::run(&runner, &spec2).unwrap();
    assert_eq!(
        runner.counters.simulated(),
        1,
        "description edits must not re-simulate"
    );

    // Semantic change (zipf exponent): exactly one new simulation.
    let semantic = base.replace("\"zipf_exponent\": 1.0", "\"zipf_exponent\": 1.2");
    let spec3 = ScenarioSpec::from_json_str(&semantic, Path::new(".")).unwrap();
    scenario::run(&runner, &spec3).unwrap();
    assert_eq!(
        runner.counters.simulated(),
        2,
        "parameter edits must re-simulate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sweeping footprint factors over a trace-replay entry must not fork its
/// store keys: the replayed data is fixed, so the cells are identical and
/// are simulated once.
#[test]
fn footprint_factors_do_not_rekey_trace_cells() {
    use banshee_workloads::{TraceData, Workload, WorkloadKind};

    let dir = temp_store_dir("tracekeys");
    std::fs::create_dir_all(&dir).unwrap();
    let workload = Workload::new(WorkloadKind::parse("gcc").unwrap(), 4 << 20, 7);
    TraceData::capture(&workload, 2, 100)
        .write_binary_file(dir.join("t.btrace"))
        .unwrap();
    let spec = ScenarioSpec::from_json_str(
        r#"{"name": "tk", "designs": ["NoCache"],
            "workloads": [{"type": "trace", "path": "t.btrace"}],
            "sweep": {"footprint_factors": [2, 4]}}"#,
        &dir,
    )
    .unwrap();
    let runner = Runner::new(ExperimentScale::Smoke);
    let cells = scenario::expand_cells(&runner, &spec).unwrap();
    assert_eq!(cells.len(), 2);
    assert_eq!(
        cells[0].1.key_material, cells[1].1.key_material,
        "factor sweeps must not re-key trace cells"
    );
    assert_eq!(cells[0].0.footprint_bytes, cells[1].0.footprint_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A captured trace replayed through the full simulator gives the same
/// result as the workload it was captured from, when the capture window
/// covers the whole run.
#[test]
fn trace_replay_reproduces_the_captured_workload() {
    use banshee_workloads::{TraceData, Workload, WorkloadKind};

    let dir = temp_store_dir("replay");
    std::fs::create_dir_all(&dir).unwrap();
    let cores = 2;
    let workload = Workload::new(WorkloadKind::parse("gcc").unwrap(), 4 << 20, 42);
    // Capture more accesses than a smoke run can consume, so replay never
    // wraps within the measured window.
    let mut data = TraceData::capture(&workload, cores, 400_000);
    // The replay entry's display name comes from the first stream; rename
    // so it does not collide with the builtin entry's label.
    for s in &mut data.streams {
        s.name = format!("{}_capture", s.name);
    }
    let trace_path = dir.join("captured.btrace");
    data.write_binary_file(&trace_path).unwrap();

    let json = format!(
        r#"{{
        "name": "replay",
        "workloads": [{{"type": "trace", "path": "captured.btrace"}},
                      {{"type": "builtin", "name": "gcc"}}],
        "designs": ["Banshee"],
        "sweep": {{"footprint_factors": [{factor}], "seeds": [42]}},
        "config": {{"cores": {cores}, "total_instructions": 60000,
                   "warmup_instructions": 30000}}
    }}"#,
        factor = (4 << 20) as f64 / banshee_common::MemSize::mib(8).as_bytes() as f64,
    );
    let spec = ScenarioSpec::from_json_str(&json, &dir).unwrap();
    let runner = Runner::new(ExperimentScale::Smoke);
    let report = scenario::run(&runner, &spec).unwrap();
    assert_eq!(report.cells.len(), 2);
    let replayed = &report.cells[0].result;
    let original = &report.cells[1].result;
    assert_eq!(replayed.instructions, original.instructions);
    assert_eq!(replayed.cycles, original.cycles);
    assert_eq!(replayed.dram_cache_accesses, original.dram_cache_accesses);
    assert_eq!(replayed.dram_cache_misses, original.dram_cache_misses);
    let _ = std::fs::remove_dir_all(&dir);
}
