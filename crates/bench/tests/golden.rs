//! Golden no-behavior-change test: one quick-scale cell per design, with
//! the full `SimResult` JSON compared against a committed fixture.
//!
//! The `--jobs` determinism tests prove parallel == sequential *within one
//! build*; this test pins the results themselves, so a refactor that is
//! supposed to be behavior-preserving (PlanSink, cache-layout or hashing
//! changes) cannot silently drift the model. If a change is *meant* to
//! alter simulated results, bump `SimConfig::MODEL_REVISION` and regenerate
//! the fixture:
//!
//! ```text
//! BANSHEE_UPDATE_GOLDEN=1 cargo test --release -p banshee_bench --test golden
//! ```

use banshee_bench::runner::{ExperimentScale, Runner};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::{SpecProgram, WorkloadKind};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_quick.json"
);

/// Every design the factory can build, including the Figure 7 ablations and
/// the designs no experiment module currently exercises (HMA).
fn all_designs() -> Vec<DramCacheDesign> {
    DramCacheDesign::named_catalogue()
}

#[test]
fn quick_scale_results_match_committed_fixture() {
    // No result store: every cell is computed fresh by this build.
    let runner = Runner::new(ExperimentScale::Quick);
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);
    let cells: Vec<_> = all_designs()
        .into_iter()
        .map(|design| (runner.config(design), kind))
        .collect();
    let results = runner.run_batch(cells);
    let value = serde::Value::Array(results.iter().map(serde::Serialize::to_value).collect());
    let json = serde_json::to_string_pretty(&value).expect("results serialize") + "\n";

    if std::env::var("BANSHEE_UPDATE_GOLDEN").is_ok() {
        std::fs::write(FIXTURE, &json).expect("write golden fixture");
        eprintln!("golden fixture regenerated at {FIXTURE}");
        return;
    }

    let expected = std::fs::read_to_string(FIXTURE).expect(
        "golden fixture missing — regenerate with \
         BANSHEE_UPDATE_GOLDEN=1 cargo test --release -p banshee_bench --test golden",
    );
    assert_eq!(
        json, expected,
        "simulated results drifted from the committed fixture; if this \
         change is intentional, bump SimConfig::MODEL_REVISION and \
         regenerate the fixture (see this test's module docs)"
    );
}
