//! Integration tests for the execution engine wiring: parallel runs must be
//! indistinguishable from sequential runs, and the persistent result store
//! must resume interrupted or repeated sweeps.

use banshee_bench::runner::{ExperimentScale, Runner};
use banshee_dcache::DramCacheDesign;
use banshee_workloads::{GraphKernel, SpecProgram, WorkloadKind};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "banshee_bench_engine_test_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_designs() -> Vec<DramCacheDesign> {
    vec![
        DramCacheDesign::NoCache,
        DramCacheDesign::Banshee,
        DramCacheDesign::Tdc,
    ]
}

fn test_workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Spec(SpecProgram::Mcf),
        WorkloadKind::Graph(GraphKernel::PageRank),
    ]
}

/// Serialize a result so byte-level equality can be asserted.
fn as_json(result: &banshee_sim::SimResult) -> String {
    serde_json::to_string_pretty(result).expect("results serialize")
}

#[test]
fn parallel_matrix_matches_sequential_cell_for_cell() {
    let sequential = Runner::new(ExperimentScale::Smoke).with_jobs(1);
    let parallel = Runner::new(ExperimentScale::Smoke).with_jobs(4);
    let designs = test_designs();
    let workloads = test_workloads();
    let a = sequential.run_matrix(&designs, &workloads);
    let b = parallel.run_matrix(&designs, &workloads);
    assert_eq!(a.workloads(), b.workloads());
    assert_eq!(a.designs(), b.designs());
    for workload in a.workloads() {
        for design in a.designs() {
            let left = a.get(workload, design).expect("sequential cell");
            let right = b.get(workload, design).expect("parallel cell");
            assert_eq!(
                as_json(left),
                as_json(right),
                "{workload} x {design} must be byte-identical at any --jobs"
            );
        }
    }
    assert_eq!(sequential.counters.simulated(), 6);
    assert_eq!(parallel.counters.simulated(), 6);
}

#[test]
fn store_resumes_a_completed_sweep() {
    let dir = temp_store_dir("resume");
    let designs = test_designs();
    let workloads = test_workloads();

    // Cold run: everything is simulated.
    let cold = Runner::new(ExperimentScale::Smoke)
        .with_jobs(2)
        .with_store(&dir);
    let first = cold.run_matrix(&designs, &workloads);
    assert_eq!(cold.counters.simulated(), 6);
    assert_eq!(cold.counters.from_store(), 0);

    // Warm run (fresh runner, same store): every cell resumes from disk and
    // the results are byte-identical.
    let warm = Runner::new(ExperimentScale::Smoke)
        .with_jobs(2)
        .with_store(&dir);
    let second = warm.run_matrix(&designs, &workloads);
    assert_eq!(warm.counters.simulated(), 0);
    assert_eq!(warm.counters.from_store(), 6);
    for workload in first.workloads() {
        for design in first.designs() {
            assert_eq!(
                as_json(first.get(workload, design).unwrap()),
                as_json(second.get(workload, design).unwrap()),
                "store round-trip must be exact"
            );
        }
    }

    // A different scale must not hit the same entries.
    let other_scale = Runner::new(ExperimentScale::Quick).with_store(&dir);
    let cfg = other_scale.config(DramCacheDesign::Banshee);
    assert!(banshee_exec::ResultStore::open(&dir)
        .unwrap()
        .get(&other_scale.cell_key_material(&cfg, workloads[0]))
        .is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_entry_is_recomputed() {
    let dir = temp_store_dir("corrupt");
    let runner = Runner::new(ExperimentScale::Smoke)
        .with_jobs(2)
        .with_store(&dir);
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);
    let baseline = runner.run(DramCacheDesign::Banshee, kind);

    // Corrupt the entry on disk.
    let store = banshee_exec::ResultStore::open(&dir).unwrap();
    let material = runner.cell_key_material(&runner.config(DramCacheDesign::Banshee), kind);
    assert!(
        store.contains(&material),
        "cold run must populate the store"
    );
    std::fs::write(store.entry_path(&material), "torn write ]}").unwrap();

    // The damaged cell is recomputed (not served), and the entry repaired.
    let fresh = Runner::new(ExperimentScale::Smoke)
        .with_jobs(2)
        .with_store(&dir);
    let recomputed = fresh.run(DramCacheDesign::Banshee, kind);
    assert_eq!(fresh.counters.simulated(), 1);
    assert_eq!(fresh.counters.from_store(), 0);
    assert_eq!(as_json(&baseline), as_json(&recomputed));
    assert!(store.contains(&material), "recompute must repair the entry");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observer_reports_every_cell() {
    let runner = Runner::new(ExperimentScale::Smoke).with_jobs(3);
    let cells: Vec<_> = test_workloads()
        .into_iter()
        .map(|w| (runner.config(DramCacheDesign::NoCache), w))
        .collect();
    let seen = std::sync::Mutex::new(Vec::new());
    let results = runner.run_batch_observed(cells, |report| {
        seen.lock()
            .unwrap()
            .push((report.index, report.workload.clone(), report.from_store));
    });
    assert_eq!(results.len(), 2);
    let mut reports = seen.into_inner().unwrap();
    reports.sort();
    assert_eq!(
        reports,
        vec![
            (0, "mcf".to_string(), false),
            (1, "pagerank".to_string(), false)
        ]
    );
}

#[test]
fn identical_cells_in_one_batch_are_simulated_once() {
    let runner = Runner::new(ExperimentScale::Smoke).with_jobs(2);
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);
    let cfg = runner.config(DramCacheDesign::NoCache);
    let other = runner.config(DramCacheDesign::Banshee);
    // The same cell twice (as fig8's default-setting groups produce) plus a
    // distinct one.
    let results = runner.run_batch(vec![(cfg.clone(), kind), (other, kind), (cfg, kind)]);
    assert_eq!(results.len(), 3);
    assert_eq!(as_json(&results[0]), as_json(&results[2]));
    assert_ne!(as_json(&results[0]), as_json(&results[1]));
    assert_eq!(
        runner.counters.simulated(),
        2,
        "the duplicate cell must share its twin's simulation"
    );
}

#[test]
fn panicking_cell_fails_the_batch_but_completed_cells_survive() {
    let dir = temp_store_dir("panic");
    let runner = Runner::new(ExperimentScale::Smoke)
        .with_jobs(2)
        .with_store(&dir);
    let good = runner.config(DramCacheDesign::NoCache);
    let mut bad = runner.config(DramCacheDesign::NoCache);
    bad.cores = 0; // workload construction asserts cores > 0
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);
    let counters = runner.counters.clone();
    let cells = vec![(good.clone(), kind), (bad, kind)];
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        runner.run_batch(cells);
    }));
    let message = match outcome {
        Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
        Ok(()) => panic!("a cell with cores = 0 must fail the batch"),
    };
    assert!(
        message.contains("1 of 2 cells panicked"),
        "unexpected batch panic message: {message}"
    );
    // The healthy cell counts; the panicked one does not.
    assert_eq!(counters.simulated(), 1);
    assert_eq!(counters.from_store(), 0);
    // The healthy cell was persisted as it completed, so a re-run after the
    // failure is fixed resumes instead of starting over.
    let store = banshee_exec::ResultStore::open(&dir).unwrap();
    assert!(
        store.contains(&runner.cell_key_material(&good, kind)),
        "completed cells must be cached even when the batch fails"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
