//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!`, integer-range and tuple strategies,
//! [`any`]`::<T>()`, [`collection::vec`] and [`ProptestConfig`]. Cases are
//! generated from a deterministic per-test RNG (seeded by the test name), so
//! runs are reproducible; there is no shrinking — a failing case reports the
//! case index and the assertion message instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_unsigned {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    macro_rules! impl_range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
    impl_range_strategy_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The full-domain strategy for `T` (`any::<bool>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection length.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — the `proptest::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic RNG (splitmix64) seeding each property test.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a label (the test function name).
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// A failed property-test case (what `prop_assert!` returns).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate and run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let ( $($pat,)+ ) =
                        ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Property-test assertion: fails the current case (not the process) so the
/// runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}
