//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with
//! hand-rolled token parsing (no `syn`/`quote`, which are unavailable
//! offline). Supported shapes — which cover everything in this workspace:
//!
//! * non-generic structs with named fields, tuple structs (newtype and
//!   wider), unit structs;
//! * non-generic enums with unit, tuple and struct variants (optionally with
//!   explicit discriminants).
//!
//! `#[serde(...)]` attributes are not interpreted; generic types are
//! rejected with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by lowering the value into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{ \
             fn to_value(&self) -> ::serde::Value {{ {} }} \
         }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive stand-in: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` by rebuilding the value from a
/// `serde::Value` tree (the mirror image of the `Serialize` derive).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         __value.field(\"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_value(__value)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.array_of({n})?; \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{ \
             fn deserialize_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DecodeError> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("serde_derive stand-in: generated Deserialize impl failed to parse")
}

/// The match over `Value::Str` (unit variants) and single-entry
/// `Value::Object` (tuple and struct variants) the enum decoder performs.
fn deserialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => ::std::result::Result::Ok({enum_name}::{v}),",
                v = v.name
            )
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let name = &v.name;
            let build = match &v.shape {
                VariantShape::Unit => return None,
                VariantShape::Tuple(1) => format!(
                    "::std::result::Result::Ok({enum_name}::{name}(\
                     ::serde::Deserialize::deserialize_value(__inner)?))"
                ),
                VariantShape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __inner.array_of({n})?; \
                         ::std::result::Result::Ok({enum_name}::{name}({}))",
                        items.join(", ")
                    )
                }
                VariantShape::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 __inner.field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({enum_name}::{name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            Some(format!("\"{name}\" => {{ {build} }}"))
        })
        .collect();
    // `__inner` would be an unused binding for unit-only enums.
    let inner_pat = if payload_arms.is_empty() {
        "(__tag, _)"
    } else {
        "(__tag, __inner)"
    };
    format!(
        "match __value {{ \
             ::serde::Value::Str(__tag) => match __tag.as_str() {{ \
                 {units} \
                 __other => ::std::result::Result::Err(::serde::DecodeError::new(\
                     ::std::format!(\"unknown variant `{{__other}}` for {enum_name}\"))), \
             }}, \
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                 let {inner_pat} = &__entries[0]; \
                 match __tag.as_str() {{ \
                     {payloads} \
                     __other => ::std::result::Result::Err(::serde::DecodeError::new(\
                         ::std::format!(\"unknown variant `{{__other}}` for {enum_name}\"))), \
                 }} \
             }}, \
             __other => ::std::result::Result::Err(::serde::DecodeError::new(\
                 ::std::format!(\"expected {enum_name} variant, got {{}}\", __other.kind()))), \
         }}",
        units = unit_arms.join(" "),
        payloads = payload_arms.join(" ")
    )
}

fn serialize_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{v}(__f0) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{v}\"), \
                  ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::Value::Array(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stand-in: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stand-in: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive stand-in: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stand-in: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive stand-in: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Skip leading `#[...]` attributes (incl. doc comments) and a visibility
/// qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next(); // (crate) / (super) / (in path)
                }
            }
            _ => return,
        }
    }
}

/// Collect the field names of a named-field body, skipping types. Commas
/// inside angle brackets (`BTreeMap<String, u64>`) are not field separators,
/// so angle-bracket depth is tracked manually.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive stand-in: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stand-in: expected `:` after field, got {other:?}"),
        }
        fields.push(name);
        skip_until_top_level_comma(&mut tokens);
    }
    fields
}

/// Count the fields of a tuple body by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        count += 1;
        skip_until_top_level_comma(&mut tokens);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive stand-in: expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_until_top_level_comma(&mut tokens);
    }
    variants
}

/// Advance past the next comma that sits outside any `<...>` nesting,
/// consuming it. Stops at end of stream.
fn skip_until_top_level_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}
