//! Offline stand-in for the `serde` crate.
//!
//! Provides the surface this workspace uses: the [`Serialize`] and
//! [`Deserialize`] traits plus their derive macros. Instead of the real
//! serde's visitor architecture, [`Serialize`] lowers a value into a
//! JSON-shaped [`Value`] tree which `serde_json` then pretty-prints, and
//! [`Deserialize`] rebuilds a value from such a tree (parsed by
//! `serde_json::from_str`). The derives are generated without `syn`/`quote`
//! (see `serde_derive`), so the supported shape is plain non-generic structs
//! and enums without `#[serde(...)]` attributes — exactly what this
//! workspace contains.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree, produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Ordered map of (key, value) pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the value's variant, used in decode errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) => "uint",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up a field of an object, failing with a decode error if `self`
    /// is not an object or the field is missing.
    pub fn field(&self, name: &str) -> Result<&Value, DecodeError> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DecodeError::new(format!("missing field `{name}`"))),
            other => Err(DecodeError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// View `self` as an array of exactly `len` elements.
    pub fn array_of(&self, len: usize) -> Result<&[Value], DecodeError> {
        match self {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(DecodeError::new(format!(
                "expected array of {len} elements, got {}",
                items.len()
            ))),
            other => Err(DecodeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

/// Error produced when a [`Value`] tree does not match the shape a
/// [`Deserialize`] implementation expects.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError(String);

impl DecodeError {
    /// A decode error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DecodeError(message.into())
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Lower `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree, matching the real serde's
/// `Deserialize<'de>` signature closely enough for the workspace's derives
/// and `serde_json::from_str` calls to swap over to the real crates.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        Ok(value.clone())
    }
}

fn decode_u64(value: &Value) -> Result<u64, DecodeError> {
    match value {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        other => Err(DecodeError::new(format!(
            "expected unsigned integer, got {}",
            other.kind()
        ))),
    }
}

fn decode_i64(value: &Value) -> Result<i64, DecodeError> {
    match value {
        Value::Int(n) => Ok(*n),
        Value::UInt(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        other => Err(DecodeError::new(format!(
            "expected signed integer, got {}",
            other.kind()
        ))),
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
                let n = decode_u64(value)?;
                <$t>::try_from(n)
                    .map_err(|_| DecodeError::new(format!("{n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
                let n = decode_i64(value)?;
                <$t>::try_from(n)
                    .map_err(|_| DecodeError::new(format!("{n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DecodeError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DecodeError::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        f64::deserialize_value(value).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DecodeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DecodeError::new(format!(
                "expected single-character string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DecodeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        let items = value.array_of(N)?;
        let decoded: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<Vec<T>, DecodeError>>()?;
        decoded
            .try_into()
            .map_err(|_| DecodeError::new("array length changed during decode"))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DecodeError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DecodeError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($len:expr, $($name:ident : $idx:tt),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DecodeError> {
                let items = value.array_of($len)?;
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_deserialize_tuple!(1, A: 0);
impl_deserialize_tuple!(2, A: 0, B: 1);
impl_deserialize_tuple!(3, A: 0, B: 1, C: 2);
impl_deserialize_tuple!(4, A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::deserialize_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::deserialize_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::deserialize_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::deserialize_value(&true.to_value()).unwrap());
        assert_eq!(
            String::deserialize_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u64>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u64>::deserialize_value(&vec![1u64, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            <[u64; 3]>::deserialize_value(&[1u64, 2, 3].to_value()).unwrap(),
            [1, 2, 3]
        );
        assert_eq!(
            <(String, u64)>::deserialize_value(&("a".to_string(), 9u64).to_value()).unwrap(),
            ("a".to_string(), 9)
        );
    }

    #[test]
    fn range_and_shape_errors() {
        assert!(u8::deserialize_value(&Value::UInt(300)).is_err());
        assert!(u64::deserialize_value(&Value::Int(-1)).is_err());
        assert!(bool::deserialize_value(&Value::UInt(1)).is_err());
        assert!(Value::Null.field("x").is_err());
        assert!(Value::Object(vec![]).field("x").is_err());
        assert!(Value::Array(vec![Value::Null]).array_of(2).is_err());
    }

    #[test]
    fn maps_round_trip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let back =
            std::collections::BTreeMap::<String, u64>::deserialize_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
