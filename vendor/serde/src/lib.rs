//! Offline stand-in for the `serde` crate.
//!
//! Provides the surface this workspace uses: the [`Serialize`] and
//! [`Deserialize`] traits plus their derive macros. Instead of the real
//! serde's visitor architecture, [`Serialize`] lowers a value into a
//! JSON-shaped [`Value`] tree which `serde_json` then pretty-prints. The
//! derives are generated without `syn`/`quote` (see `serde_derive`), so the
//! supported shape is plain non-generic structs and enums without
//! `#[serde(...)]` attributes — exactly what this workspace contains.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree, produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Ordered map of (key, value) pairs.
    Object(Vec<(String, Value)>),
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Lower `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait matching the real serde's `Deserialize<'de>` signature.
///
/// The workspace derives it for config/result types but never actually
/// deserializes, so the stand-in carries no methods.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);
