//! Offline stand-in for the `criterion` crate.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//! Each benchmark runs a short calibrated loop and prints a single
//! `name ... time/iter` line; there is no statistical analysis, HTML report
//! or saved baseline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Run a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench: {name:<40} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("bench: {name:<40} (no measurement)"),
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

pub mod measurement {
    /// Wall-clock time measurement (the only one the stand-in offers).
    pub struct WallTime;
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; the stand-in keeps its fixed budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no warm-up phase in the stand-in).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    budget: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `routine` by running it repeatedly within the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One calibration run so a slow routine never overshoots the budget
        // by more than one iteration.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters: u64 = 1;
        let mut elapsed = first;
        while elapsed < self.budget && iters < 1_000_000 {
            let batch = iters.min(1024);
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.report = Some((iters, elapsed));
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
