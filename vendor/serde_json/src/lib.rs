//! Offline stand-in for `serde_json`: JSON pretty-printing over the `serde`
//! stand-in's [`serde::Value`] tree.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stand-in can only fail on non-finite floats.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The indented form is valid compact-enough JSON for the stand-in.
    to_string_pretty(value)
}

fn write_value(out: &mut String, value: &Value, indent: usize) -> Result<(), Error> {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_value(out, item, indent + 1)?;
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push_str("{\n");
                for (i, (key, item)) in entries.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    write_value(out, item, indent + 1)?;
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("banshee".into())),
            ("ipc".into(), Value::Float(1.0)),
            (
                "traffic".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert!(s.contains("\"name\": \"banshee\""));
        assert!(s.contains("\"ipc\": 1.0"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }
}
