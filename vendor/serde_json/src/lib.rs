//! Offline stand-in for `serde_json`: JSON pretty-printing and parsing over
//! the `serde` stand-in's [`serde::Value`] tree.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The indented form is valid compact-enough JSON for the stand-in.
    to_string_pretty(value)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parse a JSON string into a [`serde::Value`] tree. Object key order is
/// preserved; numbers become `UInt`, `Int` or `Float` depending on sign and
/// the presence of a fraction/exponent.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(value)
}

/// Nesting depth past which parsing fails instead of risking a stack
/// overflow (callers like the result store rely on malformed input being a
/// recoverable error, never an abort).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {} of JSON input", self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        self.depth += 1;
        let value = match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        };
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the +1
                            // below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(first) => {
                    // Consume one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8); decode only its own bytes, not the
                    // whole remaining input.
                    let width = match first {
                        b if b < 0x80 => 1,
                        b if b < 0xE0 => 2,
                        b if b < 0xF0 => 3,
                        _ => 4,
                    };
                    let scalar = &self.bytes[self.pos..self.pos + width];
                    let s = std::str::from_utf8(scalar)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !x.is_finite() {
                return Err(self.err("non-finite number"));
            }
            Ok(Value::Float(x))
        } else if let Some(digits) = text.strip_prefix('-') {
            if digits.is_empty() {
                return Err(self.err("invalid number"));
            }
            let n: i64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::Int(n))
        } else {
            if text.is_empty() {
                return Err(self.err("invalid number"));
            }
            let n: u64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::UInt(n))
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize) -> Result<(), Error> {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_value(out, item, indent + 1)?;
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push_str("{\n");
                for (i, (key, item)) in entries.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    write_value(out, item, indent + 1)?;
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("banshee".into())),
            ("ipc".into(), Value::Float(1.0)),
            (
                "traffic".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert!(s.contains("\"name\": \"banshee\""));
        assert!(s.contains("\"ipc\": 1.0"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn parse_round_trips_value_trees() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("ban\"she\ne \u{1F600}".into())),
            ("ipc".into(), Value::Float(1.25)),
            ("count".into(), Value::UInt(u64::MAX)),
            ("delta".into(), Value::Int(-42)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::UInt(1), Value::Object(vec![])]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_shortest_float_repr_round_trips_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 2.5e-8, -1234.5678, 1e300] {
            let text = to_string_pretty(&x).unwrap();
            let back = parse_value(&text).unwrap();
            assert_eq!(back, Value::Float(x), "float {x} must round-trip");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "01a",
            "[1] junk",
            "nan",
        ] {
            assert!(parse_value(bad).is_err(), "input {bad:?} must fail");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(parse_value(&deep).is_err());
        // Moderate nesting still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse_value(&ok).is_ok());
    }

    #[test]
    fn long_strings_parse_quickly() {
        // Regression guard for the O(n^2) per-char UTF-8 revalidation: a
        // 1 MB string (with multi-byte chars) must round-trip in well under
        // a second even in debug builds.
        let body = "étude ".repeat(150_000);
        let json = to_string_pretty(&body).unwrap();
        let start = std::time::Instant::now();
        let back = parse_value(&json).unwrap();
        assert_eq!(back, Value::Str(body));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string parsing took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = parse_value("\"\\u0041\\ud83d\\ude00\\n\"").unwrap();
        assert_eq!(v, Value::Str("A\u{1F600}\n".into()));
    }

    #[test]
    fn from_str_decodes_typed_values() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let pair: (String, f64) = from_str("[\"x\", 2.5]").unwrap();
        assert_eq!(pair, ("x".to_string(), 2.5));
        assert!(from_str::<Vec<u64>>("[-1]").is_err());
    }
}
